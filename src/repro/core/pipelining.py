"""Multi-granularity software pipelining (paper section III-D).

Two pipelines are applied to the *consumer* warp group produced by task-aware
partitioning:

* **Fine-grained MMA pipeline** (GEMM-like loops, exactly one dot): the dot is
  marked asynchronous, a ``gpu.wgmma_wait(pendings=P-1)`` keeps at most P
  issue groups in flight, and the ``tawa.consumed`` of iteration ``k`` is
  delayed until iteration ``k+P-1`` (with a guarded prologue and a drain
  epilogue).  Liveness therefore needs D >= P, which is the feasible region of
  the paper's Fig. 11.

* **Coarse-grained T/C/U pipeline** (attention-like loops, two dots with CUDA
  work in between): the loop is rotated by one iteration so that the Tensor
  Core stage T_j overlaps with the CUDA-core stage C_{j-1} and the downstream
  Tensor Core stage U_{j-1}.  This is Algorithm 1 of the paper with U folded
  into the second pipeline stage (see docs/ARCHITECTURE.md).

The loop rotation itself (:func:`rotate_loop`) is generic -- the
non-warp-specialized baseline reuses it to software-pipeline cp.async copies
against Tensor Core work, exactly like stock Triton does on Ampere.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.linearize import enclosing_loops, linear_index_for_loops, trip_count
from repro.core.options import CompileOptions
from repro.ir import Builder, FuncOp, IRMapping, ModuleOp, Operation, Value
from repro.ir.dialects import arith, gpu, scf, tawa
from repro.ir.passes import FunctionPass
from repro.ir.traversal import backward_slice

ASYNC_ATTR = "tawa.async"


def _consumer_warp_groups(func: FuncOp) -> list[tawa.WarpGroupOp]:
    return [op for op in func.walk()
            if isinstance(op, tawa.WarpGroupOp) and op.is_consumer]


def _loops_directly_containing(root: Operation, op_name: str) -> list[scf.ForOp]:
    loops = []
    for op in root.walk():
        if isinstance(op, scf.ForOp):
            if any(o.name == op_name for o in op.body.operations):
                loops.append(op)
    return loops


# ---------------------------------------------------------------------------
# Fine-grained MMA pipeline
# ---------------------------------------------------------------------------


class FineGrainedPipelinePass(FunctionPass):
    """Overlap WGMMA issue with address generation and aref refills (III-D1)."""

    name = "fine-grained-pipeline"

    def __init__(self, options: CompileOptions):
        self.options = options

    def run_on_function(self, func: FuncOp, module: ModuleOp) -> None:
        if not self.options.fine_grained_pipelining:
            return
        for wg in _consumer_warp_groups(func):
            for loop in _loops_directly_containing(wg, "tt.dot"):
                dots = [op for op in loop.body.operations if op.name == "tt.dot"]
                if len(dots) != 1:
                    continue
                gets = [op for op in loop.body.operations if op.name == "tawa.get"]
                if not gets:
                    continue
                pipeline_gemm_loop(loop, wg, self.options)


def pipeline_gemm_loop(loop: scf.ForOp, wg: tawa.WarpGroupOp,
                       options: CompileOptions) -> bool:
    """Apply the fine-grained MMA pipeline of depth P to one GEMM-like loop."""
    depth = options.mma_pipeline_depth
    dot = next(op for op in loop.body.operations if op.name == "tt.dot")
    dot.set_attr(ASYNC_ATTR, True)

    builder = Builder()
    builder.set_insertion_point_after(dot)
    builder.create(gpu.WgmmaWaitOp, depth - 1)

    # Locate the get fed by this loop's aref slot and its matching consumed.
    gets = [op for op in loop.body.operations if op.name == "tawa.get"]
    get = gets[0]
    slot_op = get.slot.defining_op
    consumed = _find_consumed(loop, get.slot)

    if depth > 1 and consumed is not None and isinstance(slot_op, tawa.ArefSlotOp):
        aref_value = slot_op.aref
        linear = slot_op.index
        lag = depth - 1

        # In-loop: release slot (linear - lag) once its WGMMA has drained,
        # guarded for the first lag iterations of this loop.
        builder.set_insertion_point_before(consumed)
        lag_c = arith.c_i32(builder, lag)
        released = builder.create(arith.SubIOp, linear, lag_c).result
        loops = enclosing_loops(loop.body, stop_at=wg)  # innermost entry is `loop`
        base = linear_index_for_loops(builder, loops,
                                      innermost_override=arith.c_i32(builder, 0))
        cond = builder.create(arith.CmpIOp, "sge", released, base).result
        if_op = builder.create(scf.IfOp, cond, [], True)
        with builder.at(if_op.then_block):
            slot2 = builder.create(tawa.ArefSlotOp, aref_value, released).result
            builder.create(tawa.ConsumedOp, slot2)
            builder.create(scf.YieldOp, [])
        with builder.at(if_op.else_block):
            builder.create(scf.YieldOp, [])
        consumed.erase()

        # Epilogue: drain the MMA pipeline and release the last (P-1) slots.
        builder.set_insertion_point_after(loop)
        builder.create(gpu.WgmmaWaitOp, 0)
        trips = trip_count(builder, loop)
        last = builder.create(arith.SubIOp, trips, arith.c_i32(builder, 1)).result
        tail_base = linear_index_for_loops(builder, loops, innermost_override=last)
        for j in range(lag):
            j_c = arith.c_i32(builder, j)
            cond = builder.create(arith.CmpIOp, "sgt", trips, j_c).result
            if_op = builder.create(scf.IfOp, cond, [], True)
            with builder.at(if_op.then_block):
                idx = builder.create(arith.SubIOp, tail_base, j_c).result
                slot2 = builder.create(tawa.ArefSlotOp, aref_value, idx).result
                builder.create(tawa.ConsumedOp, slot2)
                builder.create(scf.YieldOp, [])
            with builder.at(if_op.else_block):
                builder.create(scf.YieldOp, [])
    else:
        # Depth-1 pipeline: the accumulator must be drained before reuse of the
        # slot, so wait for all outstanding MMAs before the consumed.
        target = consumed if consumed is not None else loop.body.terminator
        builder.set_insertion_point_before(target)
        builder.create(gpu.WgmmaWaitOp, 0)
        builder.set_insertion_point_after(loop)
        builder.create(gpu.WgmmaWaitOp, 0)

    loop.set_attr("tawa.pipeline", "fine")
    loop.set_attr("tawa.mma_depth", depth)
    return True


def _find_consumed(loop: scf.ForOp, slot: Value) -> Operation | None:
    for op in loop.body.operations:
        if op.name == "tawa.consumed" and op.operands[0] is slot:
            return op
    return None


# ---------------------------------------------------------------------------
# Generic one-deep loop rotation (software pipelining)
# ---------------------------------------------------------------------------


@dataclass
class RotationPlan:
    """Stage assignment for :func:`rotate_loop`."""

    stage0_ops: list[Operation]
    stage1_ops: list[Operation]
    stage0_iter_indices: list[int]
    stage1_iter_indices: list[int]
    cross_values: list[Value]


def plan_rotation(loop: scf.ForOp, seeds: Sequence[Operation]) -> RotationPlan | None:
    """Split a loop body into two pipeline stages around ``seeds``.

    Stage 0 is the backward slice of the seed operations; iter_args used by
    stage 0 are pulled into stage 0 together with the computation of their
    yielded values (so that, after rotation, stage 0 of iteration ``i`` sees
    the correct loop-carried state).  Returns ``None`` when the loop cannot be
    rotated (a value would be needed by both stages' carried state).
    """
    body_ops = [op for op in loop.body.operations if op.name != "scf.yield"]
    stage0: set[Operation] = set(backward_slice(list(seeds), within=loop.body))
    yield_operands = list(loop.yield_op.operands)
    iter_args = list(loop.iter_args)

    # Pull the update chains of stage0-used iter_args into stage 0.
    changed = True
    while changed:
        changed = False
        for idx, arg in enumerate(iter_args):
            used_by_stage0 = any(user in stage0 for user, _ in arg.uses)
            if not used_by_stage0:
                continue
            update = yield_operands[idx].defining_op
            if update is not None and update.parent is loop.body and update not in stage0:
                stage0.update(backward_slice([update], within=loop.body))
                changed = True

    stage0_ops = [op for op in body_ops if op in stage0]
    stage1_ops = [op for op in body_ops if op not in stage0]
    if not stage0_ops or not stage1_ops:
        return None

    stage1_set = set(stage1_ops)
    stage0_idx, stage1_idx = [], []
    for idx, arg in enumerate(iter_args):
        used0 = any(user in stage0 for user, _ in arg.uses)
        used1 = any(user in stage1_set for user, _ in arg.uses)
        update = yield_operands[idx].defining_op
        updated0 = update is not None and update in stage0
        updated1 = update is not None and update in stage1_set
        if (used0 or updated0) and (used1 or updated1):
            return None  # carried state shared between stages: cannot rotate
        if used0 or updated0:
            stage0_idx.append(idx)
        else:
            stage1_idx.append(idx)

    cross_values: list[Value] = []
    for op in stage0_ops:
        for res in op.results:
            if any(user in stage1_set for user in res.users) and res not in cross_values:
                cross_values.append(res)
            if res in yield_operands:
                idx = yield_operands.index(res)
                if idx in stage1_idx:
                    return None

    # Aref slot selections (and the scalar index arithmetic feeding them) are
    # rematerialized in stage 1 rather than carried across the rotation: the
    # aref lowering needs every tawa.consumed to see a real tawa.aref_slot, and
    # recomputing a couple of scalar ops is cheaper than carrying channel
    # handles in registers.
    remat: set[Operation] = set()
    for value in list(cross_values):
        op = value.defining_op
        if op is None or op.name != "tawa.aref_slot":
            continue
        slice_ops = backward_slice([op], within=loop.body)
        remat.update(o for o in slice_ops if _scalar_only(o))
        cross_values.remove(value)
    if remat:
        stage1_ops = [op for op in body_ops if op not in stage0 or op in remat]
    return RotationPlan(stage0_ops, stage1_ops, stage0_idx, stage1_idx, cross_values)


def _scalar_only(op: Operation) -> bool:
    from repro.ir.types import TensorType

    return not op.regions and all(not isinstance(r.type, TensorType) for r in op.results)


def rotate_loop(loop: scf.ForOp, plan: RotationPlan, *,
                mark_dots_async: bool = False,
                stage1_wgmma_pendings: int | None = None) -> scf.ForOp:
    """Rotate ``loop`` one iteration deep according to ``plan``.

    The new loop executes stage 0 of iteration ``i`` and stage 1 of iteration
    ``i-1``; a prologue runs stage 0 of the first iteration and an epilogue
    drains stage 1 of the last.  Assumes the loop executes at least once.
    """
    builder = Builder()
    builder.set_insertion_point_before(loop)
    yield_operands = list(loop.yield_op.operands)
    iter_args = list(loop.iter_args)
    init_args = list(loop.init_args)

    def _clone_stage(ops: list[Operation], mapping: IRMapping) -> None:
        for op in ops:
            cloned = builder.insert(op.clone(mapping))
            if mark_dots_async and cloned.name == "tt.dot":
                cloned.set_attr(ASYNC_ATTR, True)

    # -- prologue: stage 0 of iteration 0 -----------------------------------------
    prologue_map = IRMapping()
    prologue_map.map(loop.induction_var, loop.lower_bound)
    for idx in plan.stage0_iter_indices:
        prologue_map.map(iter_args[idx], init_args[idx])
    _clone_stage(plan.stage0_ops, prologue_map)
    prologue_cross = [prologue_map.lookup(v) for v in plan.cross_values]

    # -- rotated steady-state loop ---------------------------------------------------
    new_lb = builder.create(arith.AddIOp, loop.lower_bound, loop.step).result
    new_inits = []
    for idx in range(len(init_args)):
        if idx in plan.stage0_iter_indices:
            new_inits.append(prologue_map.lookup(yield_operands[idx]))
        else:
            new_inits.append(init_args[idx])
    new_inits = new_inits + prologue_cross + [loop.lower_bound]
    new_loop = builder.create(scf.ForOp, new_lb, loop.upper_bound, loop.step, new_inits,
                              dict(loop.attributes))
    n_orig = len(init_args)
    n_cross = len(plan.cross_values)
    orig_args = new_loop.iter_args[:n_orig]
    cross_args = new_loop.iter_args[n_orig:n_orig + n_cross]
    prev_iv = new_loop.iter_args[n_orig + n_cross]

    with builder.at(new_loop.body):
        map0 = IRMapping()
        map0.map(loop.induction_var, new_loop.induction_var)
        for idx in plan.stage0_iter_indices:
            map0.map(iter_args[idx], orig_args[idx])
        _clone_stage(plan.stage0_ops, map0)

        map1 = IRMapping()
        map1.map(loop.induction_var, prev_iv)
        for idx in plan.stage1_iter_indices:
            map1.map(iter_args[idx], orig_args[idx])
        for old_val, new_arg in zip(plan.cross_values, cross_args):
            map1.map(old_val, new_arg)
        if stage1_wgmma_pendings is not None:
            builder.create(gpu.WgmmaWaitOp, stage1_wgmma_pendings)
        _clone_stage(plan.stage1_ops, map1)

        yielded = []
        for idx in range(n_orig):
            src_map = map0 if idx in plan.stage0_iter_indices else map1
            yielded.append(src_map.lookup(yield_operands[idx]))
        yielded += [map0.lookup(v) for v in plan.cross_values]
        yielded += [new_loop.induction_var]
        builder.create(scf.YieldOp, yielded)

    # -- epilogue: stage 1 of the final iteration ----------------------------------------
    builder.set_insertion_point_after(new_loop)
    if stage1_wgmma_pendings is not None:
        builder.create(gpu.WgmmaWaitOp, 0)
    map_e = IRMapping()
    map_e.map(loop.induction_var, new_loop.results[n_orig + n_cross])
    for idx in plan.stage1_iter_indices:
        map_e.map(iter_args[idx], new_loop.results[idx])
    for old_val, res in zip(plan.cross_values, new_loop.results[n_orig:n_orig + n_cross]):
        map_e.map(old_val, res)
    _clone_stage(plan.stage1_ops, map_e)
    if stage1_wgmma_pendings is not None:
        builder.create(gpu.WgmmaWaitOp, 0)

    final_values = []
    for idx in range(n_orig):
        if idx in plan.stage0_iter_indices:
            final_values.append(new_loop.results[idx])
        else:
            final_values.append(map_e.lookup(yield_operands[idx]))
    for old_res, new_val in zip(loop.results, final_values):
        old_res.replace_all_uses_with(new_val)
    loop.drop_ref()
    return new_loop


# ---------------------------------------------------------------------------
# Coarse-grained T/C/U pipeline
# ---------------------------------------------------------------------------


class CoarseGrainedPipelinePass(FunctionPass):
    """Overlap CUDA-core and Tensor-Core stages across iterations (III-D2)."""

    name = "coarse-grained-pipeline"

    def __init__(self, options: CompileOptions):
        self.options = options

    def run_on_function(self, func: FuncOp, module: ModuleOp) -> None:
        if not self.options.coarse_grained_pipelining:
            return
        if self.options.aref_depth < 2:
            # The rotation keeps two slots in flight on the consumer side; with
            # a single-slot channel it would deadlock, so fall back.
            return
        for wg in _consumer_warp_groups(func):
            for loop in _loops_directly_containing(wg, "tt.dot"):
                dots = [op for op in loop.body.operations if op.name == "tt.dot"]
                if len(dots) >= 2:
                    rotate_tcu_loop(loop, self.options)


def rotate_tcu_loop(loop: scf.ForOp, options: CompileOptions) -> scf.ForOp | None:
    """Rotate an attention-like loop so T_j overlaps C_{j-1}/U_{j-1}."""
    dots = [op for op in loop.body.operations if op.name == "tt.dot"]
    t_dot = dots[0]
    plan = plan_rotation(loop, [t_dot])
    if plan is None:
        return None
    new_loop = rotate_loop(loop, plan, mark_dots_async=True, stage1_wgmma_pendings=1)
    new_loop.set_attr("tawa.pipeline", "coarse")
    return new_loop
