"""Resource estimation and validation (shared memory, registers, occupancy).

The paper's hyper-parameter study (Fig. 11) and the cooperative-warp-group
ablation (Fig. 12) are both governed by hardware budgets:

* the D staging buffers of every aref must fit in the SM's shared memory
  (infeasible cells in Fig. 11 are exactly the ones that do not), and
* the accumulator tiles held in registers by a consumer warp group must fit in
  its register budget -- a 128x256 f32 accumulator needs 256 registers per
  thread, which exceeds the 255-register architectural limit for a single warp
  group and is why large tiles require cooperative warp groups.

This pass computes both numbers from the lowered IR and attaches them to the
compiled kernel; with ``validate_resources`` enabled an infeasible
configuration raises :class:`repro.core.options.CompileError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.options import CompileError, CompileOptions
from repro.gpusim.config import DEFAULT_CONFIG, H100Config
from repro.ir import FuncOp, ModuleOp, Operation
from repro.ir.dialects import scf, tawa
from repro.ir.passes import FunctionPass
from repro.ir.types import TensorType


@dataclass
class ResourceEstimate:
    """Per-kernel resource usage summary."""

    smem_bytes: int = 0
    consumer_regs_per_thread: int = 0
    producer_regs_per_thread: int = 0
    num_warp_groups: int = 1
    consumer_replicas: int = 1
    warp_specialized: bool = False
    persistent: bool = False
    notes: list[str] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"smem={self.smem_bytes // 1024} KiB, "
            f"consumer regs/thread={self.consumer_regs_per_thread}, "
            f"warp groups={self.num_warp_groups} "
            f"(consumer replicas={self.consumer_replicas})"
        )


def estimate_resources(func: FuncOp, options: CompileOptions,
                       config: H100Config) -> ResourceEstimate:
    est = ResourceEstimate()
    est.warp_specialized = bool(func.get_attr("tawa.warp_specialized", False))
    est.persistent = bool(func.get_attr("tawa.persistent", False))

    # Shared memory: every staging buffer allocated in the kernel.
    for op in func.walk():
        if op.name == "gpu.alloc_smem":
            est.smem_bytes += op.attributes.get("bytes", 0)

    warp_groups = [op for op in func.body.operations if isinstance(op, tawa.WarpGroupOp)]
    if est.warp_specialized and warp_groups:
        consumers = [wg for wg in warp_groups if wg.is_consumer]
        producers = [wg for wg in warp_groups if wg.is_producer]
        est.consumer_replicas = max((wg.replicas for wg in consumers), default=1)
        est.num_warp_groups = len(producers) + sum(wg.replicas for wg in consumers)
        est.producer_regs_per_thread = config.baseline_registers_per_thread
        live_bytes = max(
            (_live_register_bytes(wg) for wg in consumers), default=0
        )
        per_replica_bytes = live_bytes / max(1, est.consumer_replicas)
        regs = per_replica_bytes / (config.threads_per_warp_group * 4)
        regs += config.baseline_registers_per_thread
        regs += 24 * max(0, options.mma_pipeline_depth - 1)
        est.consumer_regs_per_thread = int(round(regs))
    else:
        est.num_warp_groups = max(1, options.num_warps // 4)
        live_bytes = _live_register_bytes(func)
        regs = live_bytes / (config.threads_per_warp_group * 4)
        regs /= max(1, est.num_warp_groups)
        regs += config.baseline_registers_per_thread
        est.consumer_regs_per_thread = int(round(regs))
        est.producer_regs_per_thread = est.consumer_regs_per_thread

    return est


def _live_register_bytes(root: Operation) -> int:
    """Bytes of tensor state carried in registers across loop iterations.

    Loop-carried tensors (accumulators, the rotated pipeline's cross values)
    are what actually occupies registers for the whole loop; transient tiles
    come and go and are approximated by the baseline allowance.
    """
    live = 0
    for op in root.walk():
        if isinstance(op, scf.ForOp):
            for arg in op.iter_args:
                ty = arg.type
                if isinstance(ty, TensorType):
                    live = max(live, _loop_live_bytes(op))
    return live


def _loop_live_bytes(loop: scf.ForOp) -> int:
    total = 0
    for arg in loop.iter_args:
        ty = arg.type
        if isinstance(ty, TensorType):
            total += ty.num_elements * max(2, ty.element_type.bytes)
    return total


def validate_resources(est: ResourceEstimate, options: CompileOptions,
                       config: H100Config, kernel_name: str) -> None:
    if est.smem_bytes > config.smem_bytes_per_sm:
        raise CompileError(
            f"kernel {kernel_name!r}: shared-memory footprint {est.smem_bytes // 1024} KiB "
            f"exceeds the {config.smem_bytes_per_sm // 1024} KiB available per SM "
            f"(reduce the tile size or the aref depth D={options.aref_depth})"
        )
    if est.warp_specialized:
        budget = config.consumer_register_budget(est.consumer_replicas)
    else:
        budget = config.registers_per_thread_available(est.num_warp_groups)
    if est.consumer_regs_per_thread > budget:
        raise CompileError(
            f"kernel {kernel_name!r}: consumer warp group needs "
            f"~{est.consumer_regs_per_thread} registers/thread but only {budget} are "
            f"available with {est.num_warp_groups} resident warp groups; use cooperative "
            f"consumer warp groups (num_consumer_groups=2) or a smaller tile"
        )


class ResourceValidationPass(FunctionPass):
    """Attach resource metadata and enforce hardware budgets."""

    name = "resource-validation"

    def __init__(self, options: CompileOptions, config: H100Config | None = None):
        self.options = options
        self.config = config or DEFAULT_CONFIG
        self.estimates = {}

    def run_on_function(self, func: FuncOp, module: ModuleOp) -> None:
        est = estimate_resources(func, self.options, self.config)
        self.estimates[func.sym_name] = est
        if self.options.validate_resources:
            validate_resources(est, self.options, self.config, func.sym_name)
