"""Non-warp-specialized baseline: Ampere-style cp.async software pipelining.

This is the compilation path stock Triton uses on Hopper (per the paper's
evaluation): no warp roles, the compute warps themselves issue asynchronous
``cp.async`` copies into a small ring of staging buffers, and the main loop is
software-pipelined so the copies of iteration ``k`` overlap the Tensor-Core
work of iteration ``k-1``.  The "Triton" series of every figure is produced by
this pass; disabling it (``software_pipelining=False``) yields the fully naive
execution used as the ablation baseline of Fig. 12.
"""

from __future__ import annotations


from repro.core.options import CompileOptions
from repro.core.pipelining import plan_rotation, rotate_loop
from repro.ir import Builder, FuncOp, ModuleOp, Operation
from repro.ir.dialects import gpu, scf
from repro.ir.passes import FunctionPass


class BaselinePipeliningPass(FunctionPass):
    """Software-pipeline the main loop with cp.async staging (no warp roles)."""

    name = "baseline-cp-async-pipeline"

    def __init__(self, options: CompileOptions):
        self.options = options

    def run_on_function(self, func: FuncOp, module: ModuleOp) -> None:
        if not self.options.software_pipelining:
            return
        loops = _main_loops(func)
        for loop in loops:
            pipeline_with_cp_async(func, loop, self.options)


def _main_loops(func: FuncOp) -> list[scf.ForOp]:
    """Loops that directly contain both a TMA load and a dot."""
    loops = []
    for op in func.walk():
        if isinstance(op, scf.ForOp):
            names = [o.name for o in op.body.operations]
            if "tt.tma_load" in names and "tt.dot" in names:
                loops.append(op)
    return loops


def pipeline_with_cp_async(func: FuncOp, loop: scf.ForOp,
                           options: CompileOptions) -> bool:
    """Rewrite tt.tma_load into multi-buffered cp.async and rotate the loop."""
    loads = [op for op in loop.body.operations if op.name == "tt.tma_load"]
    if not loads:
        return False
    stages = options.num_stages
    builder = Builder()

    # Staging rings live at the top level of the function, before the loop's
    # outermost enclosing op.
    top_anchor: Operation = loop
    while top_anchor.parent_op is not None and top_anchor.parent_op is not func:
        top_anchor = top_anchor.parent_op

    copy_ops: list[Operation] = []
    read_by_load = {}
    for i, load in enumerate(loads):
        ty = load.results[0].type
        builder.set_insertion_point_before(top_anchor)
        ring = builder.create(
            gpu.AllocSmemOp, (stages, *ty.shape), ty.element_type, name=f"stage_buf{i}"
        ).result

        builder.set_insertion_point_before(load)
        view = builder.create(gpu.SmemSliceOp, ring, loop.induction_var).result
        copy = builder.create(gpu.CpAsyncOp, load.desc, list(load.coords), view)
        copy_ops.append(copy)
        read = builder.create(gpu.SmemReadOp, view, ty.element_type)
        read_by_load[load] = read
        load.results[0].replace_all_uses_with(read.result)
        load.erase()

    # One wait before the first staged read: after rotation it sits in stage 1
    # and guarantees that the *previous* iteration's copies have landed while
    # the current iteration's copies are still in flight.
    first_read = min(read_by_load.values(), key=lambda op: op.block_position())
    builder.set_insertion_point_before(first_read)
    builder.create(gpu.CpAsyncWaitOp, len(loads))

    # Stock Triton also issues its WGMMAs asynchronously and drains them at the
    # end of the iteration, so the dots do not serialize against each other.
    dots = [op for op in loop.body.operations if op.name == "tt.dot"]
    for dot in dots:
        dot.set_attr("tawa.async", True)
    if dots:
        builder.set_insertion_point_before(loop.body.terminator)
        builder.create(gpu.WgmmaWaitOp, 0)

    plan = plan_rotation(loop, copy_ops)
    if plan is None:
        # Rotation not possible (unusual loop structure): keep the staged
        # copies but wait for all of them each iteration.
        builder.set_insertion_point_before(first_read)
        builder.create(gpu.CpAsyncWaitOp, 0)
        loop.set_attr("tawa.pipeline", "cp_async_unrotated")
        return False

    new_loop = rotate_loop(loop, plan, mark_dots_async=False, stage1_wgmma_pendings=None)
    new_loop.set_attr("tawa.pipeline", "cp_async")
    new_loop.set_attr("tawa.num_stages", stages)

    # The drain copy of stage 1 runs after the loop, when no further copies
    # will be issued: it must wait for *all* outstanding cp.async groups, not
    # just leave the steady-state allowance in flight.
    block = new_loop.parent
    for op in block.operations[block.operations.index(new_loop) + 1:]:
        if isinstance(op, gpu.CpAsyncWaitOp):
            op.set_attr("pendings", 0)
    return True
