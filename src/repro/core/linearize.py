"""Helpers for linearized iteration indices.

Aref slot indices and mbarrier generations must increase monotonically over
the *whole* execution of a warp group, including across the outer tile loop of
persistent kernels.  These helpers build the IR that computes

    linear = ((iv_0 - lb_0)/step_0) * trips_1 * ... + ((iv_1 - lb_1)/step_1) * ... + ...

for a stack of enclosing ``scf.for`` loops (outermost first).
"""

from __future__ import annotations


from repro.ir import Builder, Operation, Value
from repro.ir.dialects import arith, scf
from repro.ir.operation import Block


def enclosing_loops(block: Block, stop_at: Operation | None = None) -> list[scf.ForOp]:
    """The ``scf.for`` ops enclosing ``block``, outermost first.

    Walks up the region tree and stops (exclusive) at ``stop_at`` (typically
    the ``tawa.warp_group`` op or the function).
    """
    loops: list[scf.ForOp] = []
    op = block.parent_op
    while op is not None and op is not stop_at:
        if isinstance(op, scf.ForOp):
            loops.append(op)
        op = op.parent_op
    loops.reverse()
    return loops


def normalized_iv(builder: Builder, loop: scf.ForOp) -> Value:
    """The zero-based iteration number of a loop: (iv - lb) / step."""
    lb = arith.constant_value(loop.lower_bound)
    step = arith.constant_value(loop.step)
    iv = loop.induction_var
    if lb == 0 and step == 1:
        return iv
    delta = builder.create(arith.SubIOp, iv, loop.lower_bound).result
    if step == 1:
        return delta
    return builder.create(arith.DivSIOp, delta, loop.step).result


def trip_count(builder: Builder, loop: scf.ForOp) -> Value:
    """ceil((ub - lb) / step) as an IR value."""
    lb_c = arith.constant_value(loop.lower_bound)
    step_c = arith.constant_value(loop.step)
    if lb_c == 0 and step_c == 1:
        return loop.upper_bound
    span = builder.create(arith.SubIOp, loop.upper_bound, loop.lower_bound).result
    num = builder.create(arith.AddIOp, span, loop.step).result
    one = arith.c_i32(builder, 1)
    num = builder.create(arith.SubIOp, num, one).result
    return builder.create(arith.DivSIOp, num, loop.step).result


def linear_index_for_loops(builder: Builder, loops: list[scf.ForOp],
                           innermost_override: Value | None = None) -> Value:
    """The linearized iteration index for a stack of loops (outermost first).

    ``innermost_override`` replaces the innermost loop's normalized induction
    variable (used by pipeline epilogues that need the index of the *last*
    iteration after the loop has finished).
    """
    if not loops:
        return arith.c_i32(builder, 0)
    linear: Value | None = None
    for i, loop in enumerate(loops):
        if i == len(loops) - 1 and innermost_override is not None:
            norm = innermost_override
        else:
            norm = normalized_iv(builder, loop)
        trips = trip_count(builder, loop)
        if linear is None:
            linear = norm
        else:
            scaled = builder.create(arith.MulIOp, linear, trips).result
            linear = builder.create(arith.AddIOp, scaled, norm).result
    return linear
