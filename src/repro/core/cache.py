"""Content-addressed storage for compilation artifacts (two tiers).

Cache keys are *stable fingerprints* rather than object identities: a SHA-256
over the kernel's source hash (:attr:`repro.frontend.kernel.Kernel.source_fingerprint`),
the full specialization (argument types, constexpr values, warp count),
:meth:`CompileOptions.cache_key` and the hardware config.  Identical kernels
therefore share artifacts across :class:`~repro.gpusim.device.Device`
instances, across :meth:`Device.run_many` batches and -- with the disk tier
enabled -- across *processes*, while any edit to the kernel source, the
options, the specialization or the config produces a different key.

Two tiers:

* :class:`MemoryCache` -- an in-process LRU over finished
  :class:`~repro.core.compiler.CompiledKernel` artifacts (capacity via
  ``REPRO_CACHE_MEMORY_ENTRIES``, default 256).
* :class:`DiskCache` -- an optional persistent tier rooted at
  ``REPRO_CACHE_DIR``.  Each entry is one pickle holding the lowered module,
  resource metadata, options and artifact provenance, written atomically
  (temp file + ``os.replace``) and stamped with :data:`CACHE_VERSION`.
  Entries are self-invalidating: a version mismatch, key mismatch or *any*
  load failure (truncated pickle, unreadable file, transient ``OSError``,
  ENOSPC mid-write, incompatible class layout) is treated as a miss -- the
  damaged entry is *quarantined* (renamed to ``<entry>.corrupt``, counted by
  ``compile_disk_quarantined``, so the evidence survives for diagnosis while
  never matching a future lookup) and the kernel recompiled, never crashed
  on.  The :mod:`repro.faults` hooks in :meth:`DiskCache.load` /
  :meth:`DiskCache.store` exist so tests can inject exactly these failures.

Execution plans are not pickled (their instruction streams are closures);
the service rebuilds them eagerly while finalizing a disk-loaded artifact,
which is deterministic and cheap next to the pass pipeline the hit skipped.

The orchestration lives in :mod:`repro.core.service`; see
``docs/ARCHITECTURE.md`` for the full design.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from repro import faults
from repro.perf.counters import COUNTERS

#: Bump whenever the pickled payload layout or the semantics of compiled
#: artifacts change; every existing disk entry then self-invalidates.
CACHE_VERSION = 1

#: Environment variable naming the persistent tier's root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable overriding the in-process LRU capacity.
MEMORY_ENTRIES_ENV = "REPRO_CACHE_MEMORY_ENTRIES"

DEFAULT_MEMORY_ENTRIES = 256


def stable_digest(*parts: Any) -> str:
    """A SHA-256 hex digest over the ``repr`` of each part.

    Every part must have a deterministic ``repr`` (strings, numbers, tuples
    of those, frozen dataclasses) -- which is exactly what the fingerprint
    inputs are made of.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()


def artifact_fingerprint(kern, spec, options, config) -> str:
    """The content-addressed cache key of one compilation artifact.

    Args:
        kern: the frontend :class:`~repro.frontend.kernel.Kernel`.
        spec: its :class:`~repro.frontend.kernel.Specialization` (argument
            types, constexpr values, warp count).
        options: the :class:`~repro.core.options.CompileOptions`.
        config: the :class:`~repro.gpusim.config.H100Config` (frozen
            dataclass; its repr is deterministic).
    """
    return stable_digest(
        "repro-compile-artifact",
        CACHE_VERSION,
        kern.name,
        kern.source_fingerprint,
        spec.key(),
        options.cache_key(),
        config,
    )


class KeyedMutex:
    """Per-key mutual exclusion with waiter accounting (singleflight).

    :meth:`hold` yields ``True`` when another holder already owned (or was
    queued for) the same key at registration time -- i.e. this caller
    *waited* for an identical in-flight operation rather than starting its
    own.  :class:`~repro.core.service.CompilerService` brackets its compile
    body with this, keyed by the artifact fingerprint, so K concurrent
    requests for one (kernel, options, config) run the pass pipeline exactly
    once: the first registrant compiles, the other K-1 block, then find the
    finished artifact in the memory tier.  Entries are reference-counted and
    removed when the last holder releases, so the table only ever contains
    in-flight keys.
    """

    def __init__(self):
        self._guard = threading.Lock()
        #: key -> [lock, registrants]
        self._entries: dict[str, list] = {}

    def __len__(self) -> int:
        with self._guard:
            return len(self._entries)

    @contextmanager
    def hold(self, key: str,
             on_wait: Callable[[], None] | None = None) -> Iterator[bool]:
        """Hold ``key``'s mutex for the ``with`` body.

        ``on_wait`` runs under the table guard when this caller registers
        behind an existing holder -- the one race-free place to count a
        singleflight wait exactly once per waiter.
        """
        with self._guard:
            entry = self._entries.get(key)
            if entry is None:
                entry = [threading.Lock(), 0]
                self._entries[key] = entry
            waited = entry[1] > 0
            entry[1] += 1
            if waited and on_wait is not None:
                on_wait()
        entry[0].acquire()
        try:
            yield waited
        finally:
            entry[0].release()
            with self._guard:
                entry[1] -= 1
                if entry[1] == 0:
                    self._entries.pop(key, None)


class MemoryCache:
    """In-process LRU tier over compiled artifacts.

    ``capacity=0`` disables the tier (every lookup misses); a malformed or
    negative ``REPRO_CACHE_MEMORY_ENTRIES`` value falls back to the default
    rather than poisoning every compile in the process.

    Thread-safe: the serve layer compiles from worker threads (admission-time
    warm compiles racing the dispatch thread), so the LRU reorder in ``get``
    and the eviction loop in ``put`` are guarded by a mutex.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is None:
            raw = os.environ.get(MEMORY_ENTRIES_ENV, "").strip()
            try:
                capacity = int(raw) if raw else DEFAULT_MEMORY_ENTRIES
            except ValueError:
                capacity = DEFAULT_MEMORY_ENTRIES
            if capacity < 0:
                capacity = DEFAULT_MEMORY_ENTRIES
        elif capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def get(self, key: str) -> Any | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: str, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries


class DiskCache:
    """Persistent tier: one atomically-written, version-stamped pickle per key."""

    def __init__(self, root: Path):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def load(self, key: str) -> dict | None:
        """The payload stored for ``key``, or ``None`` (miss).

        Corrupted, stale-version, mismatched or unreadable (transient
        ``OSError``) entries are quarantined (best-effort rename to
        ``*.corrupt``) and reported as misses -- a damaged cache costs a
        recompile, never a crash.
        """
        path = self.path_for(key)
        try:
            faults.raise_injected_io("cache_read", path)
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            COUNTERS.compile_disk_errors += 1
            self._quarantine(path)
            return None
        if (not isinstance(payload, dict)
                or payload.get("version") != CACHE_VERSION
                or payload.get("key") != key):
            COUNTERS.compile_disk_errors += 1
            self._quarantine(path)
            return None
        return payload

    def store(self, key: str, payload: dict) -> bool:
        """Atomically persist ``payload`` under ``key``.

        The temp-file + ``os.replace`` dance guarantees concurrent processes
        (e.g. a sweep sharded across machines on one filesystem) only ever
        observe complete entries.  Failures (read-only directory, unpicklable
        payload) are counted and swallowed: persistence is an optimization.
        """
        payload = dict(payload, version=CACHE_VERSION, key=key)
        path = self.path_for(key)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            faults.raise_injected_io("cache_write", path)
            with open(tmp, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            COUNTERS.compile_disk_errors += 1
            # A partial temp file is the write's evidence; quarantine it so
            # it can be inspected but can never be picked up by a lookup.
            self._quarantine(tmp)
            return False
        COUNTERS.compile_disk_writes += 1
        return True

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a damaged entry out of the lookup namespace (best-effort).

        ``<name>.corrupt`` never matches ``path_for`` or a ``*.pkl`` glob, so
        the entry is a guaranteed miss from here on while the bytes survive
        for diagnosis.  Falls back to unlinking when even the rename fails
        (e.g. a read-only directory); a path that no longer exists is a no-op.
        """
        try:
            os.replace(path, path.with_name(f"{path.name}.corrupt"))
            COUNTERS.compile_disk_quarantined += 1
            return
        except OSError:
            pass
        try:
            os.unlink(path)
        except OSError:
            pass


def resolve_disk_cache() -> DiskCache | None:
    """The persistent tier configured by ``REPRO_CACHE_DIR``, if any.

    Resolved per call (not cached) so tests and long-lived processes can
    toggle the tier through the environment.
    """
    root = os.environ.get(CACHE_DIR_ENV, "").strip()
    if not root:
        return None
    return DiskCache(Path(root))
