"""The declarative pass-pipeline registry.

The paper's headline claim is that warp specialization is a *compiler
feature*: one flag on an unmodified kernel selects between materially
different lowering strategies.  This module makes that selection data, not
control flow -- every lowering strategy is a named :class:`PipelineSpec`
registered here, and :func:`resolve_pipeline_name` maps a
:class:`~repro.core.options.CompileOptions` onto one of them:

===================  =====================================================
name                 meaning
===================  =====================================================
``tawa-gpu``         full warp specialization, lowered to the gpu dialect
                     (persistent -> tagging -> partitioning -> fine/coarse
                     pipelining -> aref lowering); the paper's Tawa path
``tawa-mid``         warp specialization stopped at the tawa dialect
                     (``lower_to="tawa"``); aref channels still symbolic
``triton-baseline``  stock-Triton path: cp.async software pipelining,
                     no warp roles
``naive``            no warp specialization *and* no software pipelining;
                     the ablation starting point of Fig. 12
``frontend-only``    ``lower_to="tt"``: canonicalized frontend IR only
===================  =====================================================

Every assembled pipeline is bracketed the same way: a canonicalize pass in
front (folds the constexpr arithmetic the frontend emits) and resource
validation at the back (shared-memory / register budgets), so a spec's
``build_passes`` only lists the passes that make the strategy distinctive.

See ``docs/ARCHITECTURE.md`` for how pipelines, the compile-artifact cache
and execution plans fit together.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.core.baseline import BaselinePipeliningPass
from repro.core.lowering import ArefLoweringPass
from repro.core.options import CompileError, CompileOptions
from repro.core.partition import WarpSpecializePass
from repro.core.persistent import PersistentKernelPass
from repro.core.pipelining import CoarseGrainedPipelinePass, FineGrainedPipelinePass
from repro.core.resources import ResourceValidationPass
from repro.core.tagging import TagSemanticsPass
from repro.gpusim.config import DEFAULT_CONFIG, H100Config
from repro.ir import ModuleOp, PassManager
from repro.ir.canonicalize import CanonicalizePass, DeadCodeEliminationPass
from repro.ir.passes import Pass


@dataclass(frozen=True)
class PipelineSpec:
    """One named lowering strategy.

    ``build_passes`` returns the strategy's distinctive passes; the shared
    canonicalize / resource-validation bracket is added by
    :func:`build_pass_pipeline`.
    """

    name: str
    description: str
    build_passes: Callable[[CompileOptions, H100Config], list[Pass]]


_REGISTRY: dict[str, PipelineSpec] = {}


def register_pipeline(spec: PipelineSpec, replace: bool = False) -> PipelineSpec:
    """Register a pipeline spec under its name (``replace=True`` to override)."""
    if spec.name in _REGISTRY and not replace:
        raise CompileError(f"pipeline {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_pipeline(name: str) -> PipelineSpec:
    spec = _REGISTRY.get(name)
    if spec is None:
        raise CompileError(
            f"unknown pass pipeline {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        )
    return spec


def available_pipelines() -> tuple[str, ...]:
    """The registered pipeline names, in registration order."""
    return tuple(_REGISTRY)


def resolve_pipeline_name(options: CompileOptions) -> str:
    """Map compile options onto the registered pipeline implementing them."""
    if options.lower_to == "tt":
        return "frontend-only"
    if options.enable_warp_specialization:
        return "tawa-mid" if options.lower_to == "tawa" else "tawa-gpu"
    return "triton-baseline" if options.software_pipelining else "naive"


def build_pass_pipeline(options: CompileOptions,
                        config: H100Config | None = None) -> PassManager:
    """Assemble the pass pipeline for a given set of options.

    Resolves the pipeline name from the options, asks the registered spec for
    its passes and brackets them with the shared canonicalize / resource
    validation passes.
    """
    config = config or DEFAULT_CONFIG
    spec = get_pipeline(resolve_pipeline_name(options))
    pm = PassManager()
    pm.add(CanonicalizePass())
    pm.add(*spec.build_passes(options, config))
    pm.add(ResourceValidationPass(options, config))
    return pm


# ---------------------------------------------------------------------------
# The built-in pipelines
# ---------------------------------------------------------------------------


class MidLevelSnapshotPass(Pass):
    """Capture a clone of the module at the tawa stage of the ``tawa-gpu``
    pipeline (right after partitioning, before aref lowering erases the
    symbolic channel graph).

    The clone costs ~1 ms next to a ~15 ms pipeline run and is what lets
    :mod:`repro.analysis` analyze a gpu-lowered artifact's channels without
    re-running the prefix passes as a ``lower_to="tawa"`` sibling compile.
    The snapshot is attached to the :class:`CompiledKernel` by the driver but
    never persisted: artifacts reloaded from the disk tier fall back to the
    (equally content-addressed) sibling compile.
    """

    name = "mid-level-snapshot"

    def __init__(self):
        self.snapshot = None

    def run(self, module: ModuleOp) -> None:
        self.snapshot = module.clone()


def _analysis_stage(options: CompileOptions) -> list[Pass]:
    """The opt-in static-analysis stage of the warp-specialized pipelines.

    Placed right after partitioning, where the aref channel graph exists
    symbolically (before ArefLoweringPass rewrites it into mbarrier
    arithmetic).  Imported lazily: ``repro.analysis`` sits above the core
    package (it consumes compile artifacts), so a module-level import here
    would be circular through ``repro.core.__init__``.
    """
    if not options.run_analysis:
        return []
    from repro.analysis.passes import AnalysisPass

    return [AnalysisPass(options)]


register_pipeline(PipelineSpec(
    "tawa-gpu",
    "full warp specialization lowered to the gpu dialect (the Tawa path)",
    lambda options, config: [
        PersistentKernelPass(options),
        TagSemanticsPass(),
        WarpSpecializePass(options),
        *_analysis_stage(options),
        MidLevelSnapshotPass(),
        FineGrainedPipelinePass(options),
        CoarseGrainedPipelinePass(options),
        ArefLoweringPass(options),
        CanonicalizePass(),
    ],
))

register_pipeline(PipelineSpec(
    "tawa-mid",
    "warp specialization stopped at the tawa dialect (lower_to='tawa')",
    lambda options, config: [
        PersistentKernelPass(options),
        TagSemanticsPass(),
        WarpSpecializePass(options),
        *_analysis_stage(options),
    ],
))

def _baseline_passes(options: CompileOptions, config: H100Config) -> list[Pass]:
    """Shared by ``triton-baseline`` and ``naive``: the two strategies are
    deliberately the same pass list, distinguished only by
    ``options.software_pipelining`` (which BaselinePipeliningPass reads and
    no-ops on when disabled)."""
    return [
        PersistentKernelPass(options),
        BaselinePipeliningPass(options),
        DeadCodeEliminationPass(),
    ]


register_pipeline(PipelineSpec(
    "triton-baseline",
    "stock-Triton Hopper path: cp.async software pipelining, no warp roles",
    _baseline_passes,
))

register_pipeline(PipelineSpec(
    "naive",
    "no warp specialization, no software pipelining (Fig. 12 ablation start)",
    _baseline_passes,
))

register_pipeline(PipelineSpec(
    "frontend-only",
    "canonicalized frontend IR (lower_to='tt'), no Tawa or baseline passes",
    lambda options, config: [],
))
