"""Persistent kernels (paper section IV-B).

Instead of launching one CTA per output tile, only as many CTAs as there are
SMs are launched and each iterates over output tiles in a grid-stride loop:

    for tile = cta_id; tile < num_tiles; tile += num_ctas:
        <original kernel body with program_id(0) := tile>

This eliminates per-CTA scheduling overhead and tail-wave quantization and
keeps the TMA/WGMMA pipeline in a steady state across tiles.  The pass runs
*before* task-aware partitioning, so the tile loop is distributed into both
warp groups and the aref slot indices are linearized across it (see
``repro.core.linearize``).
"""

from __future__ import annotations


from repro.core.options import CompileError, CompileOptions
from repro.ir import Builder, FuncOp, ModuleOp, Operation
from repro.ir.dialects import gpu, scf
from repro.ir.passes import FunctionPass


class PersistentKernelPass(FunctionPass):
    """Wrap the kernel body in a grid-stride loop over output tiles."""

    name = "persistent-kernel"

    def __init__(self, options: CompileOptions):
        self.options = options

    def run_on_function(self, func: FuncOp, module: ModuleOp) -> None:
        if not self.options.persistent:
            return
        make_persistent(func)


def make_persistent(func: FuncOp) -> None:
    pid_ops = [op for op in func.walk() if op.name == "tt.get_program_id"]
    if any(op.axis != 0 for op in pid_ops):
        raise CompileError(
            "persistent kernels currently require a 1-D grid "
            "(tt.get_program_id along axis 0 only)"
        )

    body_ops: list[Operation] = [
        op for op in func.body.operations if op.name != "func.return"
    ]
    return_op = func.body.terminator

    builder = Builder()
    builder.set_insertion_point_before(return_op)
    cta = builder.create(gpu.CtaIdOp).result
    num_tiles = builder.create(gpu.NumTilesOp).result
    num_ctas = builder.create(gpu.NumCtasOp).result
    loop = builder.create(scf.ForOp, cta, num_tiles, num_ctas, [],
                          {"tawa.persistent": True})

    # Move the original body into the tile loop, replacing program ids with the
    # tile index.
    for op in body_ops:
        op.detach()
        loop.body.append(op)
    for op in pid_ops:
        op.results[0].replace_all_uses_with(loop.induction_var)
        op.erase()
    with builder.at(loop.body):
        pass
    end_builder = Builder(loop.body)
    end_builder.create(gpu.BarrierSyncOp, 0)
    end_builder.create(scf.YieldOp, [])

    func.set_attr("tawa.persistent", True)
