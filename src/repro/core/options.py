"""Compilation options for the Tawa pipeline.

These correspond to the knobs studied in the paper:

* ``enable_warp_specialization`` -- the headline switch (paper: a single flag
  on unmodified Triton kernels).
* ``aref_depth`` (D) and ``mma_pipeline_depth`` (P) -- the hyper-parameters of
  Fig. 11; the feasible region is D >= P.
* ``num_consumer_groups`` -- cooperative compute warp groups (section IV-A).
* ``persistent`` -- persistent kernels (section IV-B).
* ``software_pipelining`` / ``num_stages`` -- the non-warp-specialized Triton
  baseline's Ampere-style cp.async pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


class CompileError(Exception):
    """Raised when a kernel cannot be compiled with the requested options."""


@dataclass(frozen=True)
class CompileOptions:
    """Options controlling the Tawa compilation pipeline."""

    #: Apply automatic warp specialization (the Tawa path).
    enable_warp_specialization: bool = True
    #: D -- number of aref slots (staging buffers) per communication channel.
    aref_depth: int = 2
    #: P -- how many WGMMA issue groups may be in flight (fine-grained pipeline).
    mma_pipeline_depth: int = 2
    #: Number of cooperative compute warp groups sharing one output tile.
    num_consumer_groups: int = 1
    #: Keep CTAs resident and iterate over output tiles inside the kernel.
    persistent: bool = False
    #: Apply the coarse-grained (T/C/U) pipeline to attention-like loops.
    coarse_grained_pipelining: bool = True
    #: Apply the fine-grained MMA pipeline to GEMM-like loops.
    fine_grained_pipelining: bool = True
    #: Baseline path only: software-pipeline the main loop with cp.async.
    software_pipelining: bool = True
    #: Baseline path only: number of cp.async staging buffers.
    num_stages: int = 2
    #: Warps per CTA recorded in the module (producer WG + consumer WG(s)).
    num_warps: int = 8
    #: Stop lowering at "tt" (frontend), "tawa" (mid-level) or "gpu" (default).
    lower_to: str = "gpu"
    #: Check shared-memory and register budgets (disable only in tests).
    validate_resources: bool = True
    #: Run the static dataflow analyses (aref channel protocol, bounds) as a
    #: pipeline stage; error-severity findings fail the compile.
    run_analysis: bool = False

    def __post_init__(self):
        if self.aref_depth < 1:
            raise CompileError(f"aref_depth must be >= 1, got {self.aref_depth}")
        if self.mma_pipeline_depth < 1:
            raise CompileError(
                f"mma_pipeline_depth must be >= 1, got {self.mma_pipeline_depth}"
            )
        if self.num_consumer_groups < 1:
            raise CompileError(
                f"num_consumer_groups must be >= 1, got {self.num_consumer_groups}"
            )
        if self.num_stages < 2:
            raise CompileError(f"num_stages must be >= 2, got {self.num_stages}")
        if self.lower_to not in ("tt", "tawa", "gpu"):
            raise CompileError(f"lower_to must be one of tt/tawa/gpu, got {self.lower_to!r}")
        if self.enable_warp_specialization and self.mma_pipeline_depth > self.aref_depth:
            raise CompileError(
                f"infeasible pipeline configuration: MMA depth P={self.mma_pipeline_depth} "
                f"exceeds aref depth D={self.aref_depth} (liveness requires D >= P, "
                f"see the feasible region of Fig. 11)"
            )

    def cache_key(self) -> tuple:
        return tuple(getattr(self, f.name) for f in fields(self))

    def evolve(self, **kwargs) -> "CompileOptions":
        """A copy of the options with some fields replaced."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update(kwargs)
        return CompileOptions(**values)


#: The configuration stock Triton uses on Hopper (no warp specialization,
#: Ampere-style cp.async software pipelining).
TRITON_BASELINE_OPTIONS = CompileOptions(
    enable_warp_specialization=False,
    software_pipelining=True,
)

#: The fully naive configuration used as the ablation starting point.
NAIVE_OPTIONS = CompileOptions(
    enable_warp_specialization=False,
    software_pipelining=False,
)
