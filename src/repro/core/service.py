"""The compiler service: one front door for producing compilation artifacts.

:class:`CompilerService` is what the simulator stack calls instead of
:func:`repro.core.compiler.compile_kernel` directly.  It owns the
content-addressed artifact cache (:mod:`repro.core.cache`) and the artifact
finalization step, so every caller -- :meth:`Device.compile`, the
:meth:`Device.run_many` prepared-launch path, the front-loaded sweep
compilation in :mod:`repro.experiments.common` -- gets the same behaviour:

1. **Fingerprint** the request (kernel source hash + specialization +
   options + config) -- never object identity.
2. **Memory tier**: return the finished artifact if this process already
   built or loaded it (LRU, counted as ``compile_cache_hits``).
3. **Disk tier** (``REPRO_CACHE_DIR``): unpickle the lowered module and
   metadata written by a previous process, re-attach the caller's kernel and
   finalize -- the entire pass pipeline is skipped (``compile_passes_run``
   stays flat, which is how tests prove cold-start reuse).
4. **Compile**: run the registered pass pipeline
   (:mod:`repro.core.pipelines`), then finalize and persist.

*Finalization* makes execution plans first-class parts of the artifact: the
:mod:`repro.gpusim.plan` plan for every requested (mode, config) pair is
built eagerly here, before the artifact is returned, so launches -- and the
worker processes :mod:`repro.gpusim.parallel` forks -- inherit ready plans by
construction and nothing needs to mutate the artifact afterwards.

See ``docs/ARCHITECTURE.md`` for the full design.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from repro.core.cache import (
    KeyedMutex,
    MemoryCache,
    artifact_fingerprint,
    resolve_disk_cache,
)
from repro.core.compiler import CompiledKernel, compile_kernel
from repro.core.options import CompileError, CompileOptions
from repro.frontend.kernel import Kernel
from repro.gpusim.config import DEFAULT_CONFIG, H100Config
from repro.ir.types import Type
from repro.perf.counters import COUNTERS


class CompilerService:
    """Content-addressed, two-tier cached compilation.

    Thread-safe with *singleflight* semantics: concurrent ``compile`` calls
    for the same content fingerprint are collapsed onto one pipeline
    execution -- the first caller compiles while the rest block on a keyed
    in-flight mutex, then find the finished artifact in the memory tier
    (counted as ``compile_singleflight_waits`` + a cache hit).  Because plan
    and codegen finalization happen inside the same keyed critical section,
    the dedup covers every artifact kind hanging off the fingerprint
    (execution plans, vectorized codegen, analysis results produced by
    in-pipeline passes), not just the lowered module.
    """

    def __init__(self, memory_capacity: int | None = None):
        self._memory = MemoryCache(memory_capacity)
        self._inflight = KeyedMutex()

    # ------------------------------------------------------------------ API

    def compile(
        self,
        kern: Kernel,
        arg_types: Mapping[str, Type] | Sequence[Type],
        constexprs: Mapping[str, Any] | None = None,
        options: CompileOptions | None = None,
        config: H100Config | None = None,
        plan_modes: Iterable[bool] = (),
        codegen_modes: Iterable[bool] = (),
    ) -> CompiledKernel:
        """A finished compilation artifact for the request (cached).

        ``plan_modes`` lists the execution modes (``True`` = functional,
        ``False`` = performance) whose simulator plans must be part of the
        artifact; they are built eagerly at finalize time, never during a
        launch.  ``codegen_modes`` does the same for the vectorized
        plan-to-source artifacts (:mod:`repro.gpusim.codegen`), which have
        their own persistent-cache entries keyed off this artifact's
        fingerprint.
        """
        if not isinstance(kern, Kernel):
            raise CompileError(
                f"CompilerService.compile expects an @kernel-decorated function, "
                f"got {type(kern).__name__}"
            )
        options = options or CompileOptions()
        config = config or DEFAULT_CONFIG
        constexprs = dict(constexprs or {})
        spec = kern.specialize(arg_types, constexprs, num_warps=options.num_warps)
        key = artifact_fingerprint(kern, spec, options, config)
        modes = tuple(dict.fromkeys(plan_modes))  # dedupe, keep order
        cg_modes = tuple(dict.fromkeys(codegen_modes))

        def _count_wait() -> None:
            COUNTERS.compile_singleflight_waits += 1

        # Singleflight: the whole lookup-or-compile body runs under a mutex
        # keyed by the content fingerprint.  A waiter that blocked here finds
        # the leader's artifact in the memory tier (an ordinary hit); its own
        # mode finalization below is a memoized lookup at worst.
        with self._inflight.hold(key, on_wait=_count_wait):
            return self._compile_locked(kern, key, spec, constexprs, options,
                                        config, modes, cg_modes)

    def _compile_locked(self, kern: Kernel, key: str, spec, constexprs,
                        options: CompileOptions, config: H100Config,
                        modes: tuple, cg_modes: tuple) -> CompiledKernel:
        compiled = self._memory.get(key)
        if compiled is not None:
            COUNTERS.compile_cache_hits += 1
            self._finalize(compiled, config, modes, cg_modes)
            return compiled
        COUNTERS.compile_cache_misses += 1

        disk = resolve_disk_cache()
        if disk is not None:
            payload = disk.load(key)
            if payload is not None:
                COUNTERS.compile_disk_hits += 1
                compiled = self._reconstruct(kern, key, payload)
                self._finalize(compiled, config,
                               tuple(payload.get("plan_modes", ())) + modes,
                               tuple(payload.get("codegen_modes", ())) + cg_modes)
                self._memory.put(key, compiled)
                return compiled
            COUNTERS.compile_disk_misses += 1

        compiled = compile_kernel(kern, dict(spec.arg_types), constexprs,
                                  options, config=config, spec=spec)
        assert compiled.fingerprint == key  # one key computation, two users
        self._finalize(compiled, config, modes, cg_modes)
        if disk is not None:
            disk.store(key, self._payload(compiled, modes, cg_modes))
        self._memory.put(key, compiled)
        return compiled

    def lookup(self, key: str) -> CompiledKernel | None:
        """The memory-tier artifact for a content fingerprint, if present.

        This is the persistent worker pool's warm path: work items carry the
        artifact's fingerprint (the compiled kernel itself cannot pickle),
        and the pool worker resolves it from the memory tier it inherited at
        fork time -- counted as a cache hit, since it replaces a compile.  A
        miss means the worker forked before the artifact existed; the pool
        respawns it rather than compiling in-worker.
        """
        compiled = self._memory.get(key)
        if compiled is not None:
            COUNTERS.compile_cache_hits += 1
        else:
            COUNTERS.compile_cache_misses += 1
        return compiled

    def ensure_cached(self, key: str, compiled: CompiledKernel) -> None:
        """Pin an already-finalized artifact into the memory tier.

        Used by the pool right before (re)spawning workers for a launch, so
        a fork taken now is guaranteed to inherit the launch's artifact even
        if LRU pressure evicted it since ``compile`` returned.
        """
        if self._memory.get(key) is None:
            self._memory.put(key, compiled)

    def clear(self) -> None:
        """Drop the in-process tier (tests; the disk tier is left alone)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------ internals

    @staticmethod
    def _finalize(compiled: CompiledKernel, config: H100Config,
                  modes: Iterable[bool],
                  codegen_modes: Iterable[bool] = ()) -> None:
        """Eagerly build the artifact's execution plans for ``modes``.

        :func:`repro.gpusim.plan.get_plan` memoizes per (mode, config) on the
        artifact, so re-finalizing an already-finalized artifact (a cache
        hit requesting the same modes) is a dict lookup.  The same holds for
        :func:`repro.gpusim.codegen.get_codegen` and ``codegen_modes``.
        """
        from repro.gpusim.plan import get_plan

        for functional in modes:
            get_plan(compiled, config, functional)
        if codegen_modes := tuple(codegen_modes):
            from repro.gpusim.codegen import get_codegen

            for functional in codegen_modes:
                get_codegen(compiled, config, functional)

    @staticmethod
    def _payload(compiled: CompiledKernel, modes: Iterable[bool],
                 codegen_modes: Iterable[bool] = ()) -> dict:
        """The picklable persistent form of an artifact.

        Plans are deliberately absent: their instruction streams are closures,
        so :meth:`_finalize` rebuilds them (deterministically, from the
        pickled module) when the artifact is loaded.  The frontend ``Kernel``
        is also absent -- the loading process supplies its own, and the
        content fingerprint guarantees it has identical source.
        """
        return {
            "kernel_name": compiled.kernel.name,
            "source_fingerprint": compiled.kernel.source_fingerprint,
            "module": compiled.module,
            "func_name": compiled.func.sym_name,
            "arg_names": list(compiled.arg_names),
            "constexprs": dict(compiled.constexprs),
            "options": compiled.options,
            "metadata": compiled.metadata,
            "pipeline": compiled.pipeline,
            "plan_modes": tuple(modes),
            "codegen_modes": tuple(codegen_modes),
        }

    @staticmethod
    def _reconstruct(kern: Kernel, key: str, payload: dict) -> CompiledKernel:
        """Rebuild a CompiledKernel from a disk payload (no passes run)."""
        module = payload["module"]
        return CompiledKernel(
            kernel=kern,
            module=module,
            func=module.get_function(payload["func_name"]),
            arg_names=list(payload["arg_names"]),
            constexprs=dict(payload["constexprs"]),
            options=payload["options"],
            metadata=payload["metadata"],
            pipeline=payload.get("pipeline", ""),
            fingerprint=key,
        )


_SERVICE: CompilerService | None = None


def get_compiler_service() -> CompilerService:
    """The process-wide compiler service (created on first use)."""
    global _SERVICE
    if _SERVICE is None:
        _SERVICE = CompilerService()
    return _SERVICE


def reset_compiler_service() -> None:
    """Drop the process-wide service's in-memory tier (tests)."""
    if _SERVICE is not None:
        _SERVICE.clear()
