"""The Tawa compilation driver.

``compile_kernel`` takes an annotation-free tile-language kernel, a binding of
argument types and constexpr values, and a :class:`CompileOptions`, and runs
the pass pipeline the options resolve to (see :mod:`repro.core.pipelines` and
``docs/ARCHITECTURE.md``).  The paper's Tawa path (``tawa-gpu``) is:

    frontend IR -> canonicalize
                -> [persistent kernel]                     (IV-B)
                -> semantic tagging                        (III-C1)
                -> task-aware partitioning + aref insertion (III-C2)
                -> fine / coarse grained pipelining        (III-D)
                -> aref lowering to mbarriers + TMA        (III-E)
                -> canonicalize / DCE
                -> resource estimation & validation

or, with warp specialization disabled, the stock-Triton baseline path
(cp.async software pipelining).  The result is a :class:`CompiledKernel` that
the simulator (:class:`repro.gpusim.Device`) can launch.

This module is the *pure* compiler: every call runs the pass pipeline.
Callers that want caching (which is everything in the simulator stack) go
through :class:`repro.core.service.CompilerService` instead, which
content-addresses finished artifacts across devices and processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import Any

from repro.core.cache import artifact_fingerprint
from repro.core.options import CompileError, CompileOptions
from repro.core.pipelines import (
    MidLevelSnapshotPass,
    build_pass_pipeline,
    resolve_pipeline_name,
)
from repro.core.resources import ResourceEstimate, ResourceValidationPass
from repro.frontend.kernel import Kernel
from repro.gpusim.config import DEFAULT_CONFIG, H100Config
from repro.ir import FuncOp, ModuleOp, print_op
from repro.ir.types import Type
from repro.perf.counters import COUNTERS

__all__ = [
    "CompiledKernel",
    "build_pass_pipeline",
    "compile_kernel",
]


@dataclass
class CompiledKernel:
    """A compilation artifact: a kernel lowered and ready for simulation."""

    kernel: Kernel
    module: ModuleOp
    func: FuncOp
    arg_names: list[str]
    constexprs: dict[str, Any]
    options: CompileOptions
    metadata: ResourceEstimate
    #: Name of the registered pipeline that produced this artifact.
    pipeline: str = ""
    #: Content-addressed fingerprint (the artifact-cache key); see
    #: :func:`repro.core.cache.artifact_fingerprint`.
    fingerprint: str | None = None
    #: Per-pass wall seconds of the pipeline run that built this artifact
    #: (empty for artifacts loaded from the persistent cache -- their
    #: pipeline never ran in this process).
    pass_timings: dict[str, float] = field(default_factory=dict)
    pass_dumps: dict[str, str] = field(default_factory=dict)
    #: Simulator execution plans, keyed by (functional, config).  Part of the
    #: artifact: built eagerly by CompilerService finalization for every
    #: requested mode, so launches and forked workers find them ready-made
    #: (repro.gpusim.plan.get_plan remains the accessor, and lazily fills the
    #: map only for kernels compiled outside the service).
    plans: dict[Any, Any] = field(default_factory=dict, repr=False, compare=False)
    #: Clone of the module at the tawa stage of the ``tawa-gpu`` pipeline
    #: (see :class:`repro.core.pipelines.MidLevelSnapshotPass`).  Never
    #: persisted: absent on baseline artifacts and on artifacts reloaded from
    #: the disk tier, where :mod:`repro.analysis` falls back to the
    #: content-addressed sibling compile.
    mid_module: ModuleOp | None = field(default=None, repr=False, compare=False)

    @property
    def name(self) -> str:
        return self.kernel.name

    def ir(self) -> str:
        """The final IR as text (what PTX emission would consume)."""
        return print_op(self.module)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        ws = "warp-specialized" if self.metadata.warp_specialized else "baseline"
        return f"<CompiledKernel {self.name} ({ws})>"


def compile_kernel(
    kern: Kernel,
    arg_types: Mapping[str, Type] | Sequence[Type],
    constexprs: Mapping[str, Any] | None = None,
    options: CompileOptions | None = None,
    config: H100Config | None = None,
    dump_ir: bool = False,
    spec=None,
) -> CompiledKernel:
    """Compile a tile-language kernel down to simulator-executable IR.

    Args:
        kern: a function decorated with :func:`repro.frontend.kernel`.
        arg_types: IR types of the runtime arguments (mapping by name, or a
            sequence in declaration order).
        constexprs: values for the ``tl.constexpr`` parameters.
        options: Tawa compilation options (defaults to warp specialization on).
        config: hardware configuration used for resource validation.
        dump_ir: record the IR after every pass in ``CompiledKernel.pass_dumps``.
        spec: an already-built :class:`~repro.frontend.kernel.Specialization`
            for these inputs (the compiler service passes the one it keyed
            the cache lookup on, so specialization and fingerprinting happen
            exactly once per request).
    """
    if not isinstance(kern, Kernel):
        raise CompileError(
            f"compile_kernel expects an @kernel-decorated function, got {type(kern).__name__}"
        )
    options = options or CompileOptions()
    config = config or DEFAULT_CONFIG
    constexprs = dict(constexprs or {})

    if spec is None:
        spec = kern.specialize(arg_types, constexprs, num_warps=options.num_warps)
    module = kern.build_module(spec)

    dumps: dict[str, str] = {}
    pipeline_name = resolve_pipeline_name(options)
    pm = build_pass_pipeline(options, config)
    pm.timing_sink = COUNTERS.record_pass_timing
    if dump_ir:
        pm.dump_each = lambda name, text: dumps.__setitem__(name, text)
    try:
        pm.run(module)
    except Exception as exc:
        # Surface user-facing configuration errors (infeasible D/P, register or
        # shared-memory budget) directly rather than wrapped in PassError.
        cause = exc.__cause__
        if isinstance(cause, CompileError):
            raise cause from exc
        raise

    func = module.get_function(kern.name)
    validation = next(p for p in pm.passes if isinstance(p, ResourceValidationPass))
    metadata = validation.estimates[func.sym_name]
    snapshot = next((p.snapshot for p in pm.passes
                     if isinstance(p, MidLevelSnapshotPass)), None)

    timings: dict[str, float] = {}
    for t in pm.timings:
        timings[t.name] = timings.get(t.name, 0.0) + t.seconds

    return CompiledKernel(
        kernel=kern,
        module=module,
        func=func,
        arg_names=list(kern.runtime_param_names),
        constexprs=constexprs,
        options=options,
        metadata=metadata,
        pipeline=pipeline_name,
        fingerprint=artifact_fingerprint(kern, spec, options, config),
        pass_timings=timings,
        pass_dumps=dumps,
        mid_module=snapshot,
    )
