"""The Tawa compilation driver.

``compile_kernel`` takes an annotation-free tile-language kernel, a binding of
argument types and constexpr values, and a :class:`CompileOptions`, and runs
the full pass pipeline described in the paper (and in DESIGN.md):

    frontend IR -> canonicalize
                -> [persistent kernel]                     (IV-B)
                -> semantic tagging                        (III-C1)
                -> task-aware partitioning + aref insertion (III-C2)
                -> fine / coarse grained pipelining        (III-D)
                -> aref lowering to mbarriers + TMA        (III-E)
                -> canonicalize / DCE
                -> resource estimation & validation

or, with warp specialization disabled, the stock-Triton baseline path
(cp.async software pipelining).  The result is a :class:`CompiledKernel` that
the simulator (:class:`repro.gpusim.Device`) can launch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.baseline import BaselinePipeliningPass
from repro.core.lowering import ArefLoweringPass
from repro.core.options import CompileError, CompileOptions
from repro.core.partition import WarpSpecializePass
from repro.core.persistent import PersistentKernelPass
from repro.core.pipelining import CoarseGrainedPipelinePass, FineGrainedPipelinePass
from repro.core.resources import ResourceEstimate, ResourceValidationPass
from repro.core.tagging import TagSemanticsPass
from repro.frontend.kernel import Kernel
from repro.gpusim.config import DEFAULT_CONFIG, H100Config
from repro.ir import FuncOp, ModuleOp, PassManager, print_op
from repro.ir.canonicalize import CanonicalizePass, DeadCodeEliminationPass
from repro.ir.types import Type


@dataclass
class CompiledKernel:
    """A kernel lowered and ready for simulation."""

    kernel: Kernel
    module: ModuleOp
    func: FuncOp
    arg_names: List[str]
    constexprs: Dict[str, Any]
    options: CompileOptions
    metadata: ResourceEstimate
    pass_dumps: Dict[str, str] = field(default_factory=dict)
    #: Cached simulator execution plans, keyed by (functional, config); built
    #: lazily by repro.gpusim.plan.get_plan and shared by every CTA/launch.
    plans: Dict[Any, Any] = field(default_factory=dict, repr=False, compare=False)

    @property
    def name(self) -> str:
        return self.kernel.name

    def ir(self) -> str:
        """The final IR as text (what PTX emission would consume)."""
        return print_op(self.module)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        ws = "warp-specialized" if self.metadata.warp_specialized else "baseline"
        return f"<CompiledKernel {self.name} ({ws})>"


def build_pass_pipeline(options: CompileOptions,
                        config: Optional[H100Config] = None) -> PassManager:
    """The pass pipeline for a given set of options (exposed for tests)."""
    config = config or DEFAULT_CONFIG
    pm = PassManager()
    pm.add(CanonicalizePass())
    if options.enable_warp_specialization:
        if options.lower_to != "tt":
            pm.add(PersistentKernelPass(options))
            pm.add(TagSemanticsPass())
            pm.add(WarpSpecializePass(options))
            if options.lower_to == "gpu":
                pm.add(FineGrainedPipelinePass(options))
                pm.add(CoarseGrainedPipelinePass(options))
                pm.add(ArefLoweringPass(options))
                pm.add(CanonicalizePass())
    else:
        if options.lower_to != "tt":
            pm.add(PersistentKernelPass(options))
            pm.add(BaselinePipeliningPass(options))
            pm.add(DeadCodeEliminationPass())
    pm.add(ResourceValidationPass(options, config))
    return pm


def compile_kernel(
    kern: Kernel,
    arg_types: Union[Mapping[str, Type], Sequence[Type]],
    constexprs: Optional[Mapping[str, Any]] = None,
    options: Optional[CompileOptions] = None,
    config: Optional[H100Config] = None,
    dump_ir: bool = False,
) -> CompiledKernel:
    """Compile a tile-language kernel down to simulator-executable IR.

    Args:
        kern: a function decorated with :func:`repro.frontend.kernel`.
        arg_types: IR types of the runtime arguments (mapping by name, or a
            sequence in declaration order).
        constexprs: values for the ``tl.constexpr`` parameters.
        options: Tawa compilation options (defaults to warp specialization on).
        config: hardware configuration used for resource validation.
        dump_ir: record the IR after every pass in ``CompiledKernel.pass_dumps``.
    """
    if not isinstance(kern, Kernel):
        raise CompileError(
            f"compile_kernel expects an @kernel-decorated function, got {type(kern).__name__}"
        )
    options = options or CompileOptions()
    config = config or DEFAULT_CONFIG
    constexprs = dict(constexprs or {})

    spec = kern.specialize(arg_types, constexprs, num_warps=options.num_warps)
    module = kern.build_module(spec)

    dumps: Dict[str, str] = {}
    pm = build_pass_pipeline(options, config)
    if dump_ir:
        pm.dump_each = lambda name, text: dumps.__setitem__(name, text)
    try:
        pm.run(module)
    except Exception as exc:
        # Surface user-facing configuration errors (infeasible D/P, register or
        # shared-memory budget) directly rather than wrapped in PassError.
        cause = exc.__cause__
        if isinstance(cause, CompileError):
            raise cause from exc
        raise

    func = module.get_function(kern.name)
    validation = next(p for p in pm.passes if isinstance(p, ResourceValidationPass))
    metadata = validation.estimates[func.sym_name]

    return CompiledKernel(
        kernel=kern,
        module=module,
        func=func,
        arg_names=list(kern.runtime_param_names),
        constexprs=constexprs,
        options=options,
        metadata=metadata,
        pass_dumps=dumps,
    )
