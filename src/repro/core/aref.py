"""Executable operational semantics of asynchronous references (paper Fig. 4).

This module is the *formal model* of the aref abstraction, independent of the
IR and of the simulator.  It exists for three reasons:

1. It documents the protocol precisely (the paper's PUT/GET/CONSUMED rules).
2. The property-based tests exercise it directly (any sequence of operations
   either follows the protocol or raises :class:`ArefStateError`).
3. The simulator's runtime channel (:class:`repro.gpusim.engine.ArefSlotRuntime`)
   and the lowering's mbarrier encoding are both checked against it in the
   differential tests.

State space (per slot)::

        put            get             consumed
  EMPTY ----> FULL ----> BORROWED ----> EMPTY
  (E=1,F=0)  (E=0,F=1)   (E=0,F=0)

where ``E`` is the *empty* mbarrier credit and ``F`` the *full* mbarrier
credit; exactly one of the three states holds at any time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, TypeVar

T = TypeVar("T")


class ArefStateError(Exception):
    """An aref operation was applied in a state where it is not enabled."""


@dataclass
class ArefState(Generic[T]):
    """The <buf, F, E> triple of the paper's operational semantics."""

    buf: T | None = None
    full: bool = False
    empty: bool = True

    @property
    def state_name(self) -> str:
        if self.empty and not self.full:
            return "EMPTY"
        if self.full and not self.empty:
            return "FULL"
        if not self.full and not self.empty:
            return "BORROWED"
        return "INVALID"


class ArefSlot(Generic[T]):
    """One single-slot channel obeying the Fig. 4 transition rules."""

    def __init__(self, name: str = "aref"):
        self.name = name
        self.state = ArefState[T]()
        self.history: list[str] = []

    # -- protocol operations ------------------------------------------------------

    def put(self, value: T) -> None:
        """Producer publication: requires E=1; afterwards F=1, E=0."""
        if not self.state.empty:
            raise ArefStateError(
                f"{self.name}: put requires EMPTY, slot is {self.state.state_name}"
            )
        self.state = ArefState(buf=value, full=True, empty=False)
        self.history.append("put")

    def get(self) -> T:
        """Consumer acquisition: requires F=1; afterwards F=0, E=0 (borrowed)."""
        if not self.state.full:
            raise ArefStateError(
                f"{self.name}: get requires FULL, slot is {self.state.state_name}"
            )
        value = self.state.buf
        self.state = ArefState(buf=value, full=False, empty=False)
        self.history.append("get")
        return value

    def consumed(self) -> None:
        """Consumer release: requires the borrowed state; afterwards E=1."""
        if self.state.full or self.state.empty:
            raise ArefStateError(
                f"{self.name}: consumed requires BORROWED, slot is {self.state.state_name}"
            )
        self.state = ArefState(buf=self.state.buf, full=False, empty=True)
        self.history.append("consumed")

    # -- queries --------------------------------------------------------------------

    @property
    def can_put(self) -> bool:
        return self.state.empty

    @property
    def can_get(self) -> bool:
        return self.state.full

    @property
    def state_name(self) -> str:
        return self.state.state_name

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<ArefSlot {self.name} {self.state_name}>"


class ArefRing(Generic[T]):
    """A depth-D ring of aref slots indexed by ``iteration mod D``.

    This is the cyclic-buffer grouping described in section III-B: it lets the
    producer run up to D iterations ahead of the consumer while every slot
    still follows the single-slot protocol.
    """

    def __init__(self, depth: int, name: str = "aref"):
        if depth < 1:
            raise ValueError(f"aref ring depth must be >= 1, got {depth}")
        self.depth = depth
        self.name = name
        self.slots: list[ArefSlot[T]] = [ArefSlot(f"{name}[{i}]") for i in range(depth)]

    def slot(self, index: int) -> ArefSlot[T]:
        return self.slots[index % self.depth]

    def put(self, index: int, value: T) -> None:
        self.slot(index).put(value)

    def get(self, index: int) -> T:
        return self.slot(index).get()

    def consumed(self, index: int) -> None:
        self.slot(index).consumed()

    @property
    def states(self) -> tuple[str, ...]:
        return tuple(s.state_name for s in self.slots)

    def max_producer_lead(self) -> int:
        """The number of puts that can complete before any get (== depth)."""
        return self.depth


def run_trace(slot: ArefSlot, operations: list[tuple[str, object | None]]) -> list[str]:
    """Execute a sequence of (op, value) pairs against one slot.

    Returns the state names after each operation.  Used by property tests to
    check that exactly the protocol-conforming traces are accepted.
    """
    states = []
    for op, value in operations:
        if op == "put":
            slot.put(value)
        elif op == "get":
            slot.get()
        elif op == "consumed":
            slot.consumed()
        else:
            raise ValueError(f"unknown aref operation {op!r}")
        states.append(slot.state_name)
    return states
