"""Semantic tagging (paper section III-C1).

The pass walks backwards along use-def chains starting at the kernel's
side-effecting sinks and attaches a role tag to every operation:

* ``"load"`` -- the TMA load operations themselves (producer anchors),
* ``"iteration"`` -- address/offset computation that feeds TMA coordinates
  (the paper's *iteration statements*, drawn in orange in Fig. 5a),
* ``"tile"`` -- operations that transform or consume a tile (WGMMA, softmax,
  reductions, stores; the paper's *tile statements*, blue in Fig. 5a),
* ``"other"`` -- everything else (structural ops, scalar glue only used by
  control flow).

The tag is stored in the ``tawa.role`` attribute so later passes (and tests)
can inspect it.
"""

from __future__ import annotations


from repro.ir import FuncOp, ModuleOp, Operation
from repro.ir.passes import FunctionPass
from repro.ir.traversal import backward_slice, defining_op
from repro.ir.types import TensorType

ROLE_ATTR = "tawa.role"

ROLE_LOAD = "load"
ROLE_ITERATION = "iteration"
ROLE_TILE = "tile"
ROLE_OTHER = "other"

#: ops that anchor the consumer (tile) partition
_TILE_ANCHORS = ("tt.dot", "tt.store", "tt.tma_store", "tt.reduce")


def is_tma_load(op: Operation) -> bool:
    return op.name == "tt.tma_load"


def is_tile_anchor(op: Operation) -> bool:
    return op.name in _TILE_ANCHORS


class TagSemanticsPass(FunctionPass):
    """Attach ``tawa.role`` attributes to every operation of each kernel."""

    name = "tag-semantics"

    def run_on_function(self, func: FuncOp, module: ModuleOp) -> None:
        tag_function(func)


def tag_function(func: FuncOp) -> None:
    all_ops: list[Operation] = [op for op in func.walk() if op is not func]

    loads = [op for op in all_ops if is_tma_load(op)]
    tile_anchors = [op for op in all_ops if is_tile_anchor(op)]

    # Iteration statements: the backward slices of TMA-load *coordinates*
    # (not the descriptor itself) -- pointer/offset arithmetic scattered
    # through the IR, e.g. the `o_k += Kt` update in the paper's Fig. 2b.
    iteration_ops: set[Operation] = set()
    coord_producers = []
    for load in loads:
        for coord in load.coords:
            producer = defining_op(coord)
            if producer is not None:
                coord_producers.append(producer)
            else:
                # Coordinates carried across loop iterations (the paper's
                # `o_k += Kt` example): their per-iteration update is an
                # iteration statement even though it sits away from the load.
                coord_producers.extend(_carried_update_ops(coord))
    iteration_ops.update(backward_slice(coord_producers, filter=_is_scalar_glue))

    # Tile statements: anchors plus everything downstream of a dot, plus the
    # float-tensor arithmetic that feeds the anchors (softmax and friends).
    tile_ops: set[Operation] = set(tile_anchors)
    tile_ops.update(
        op for op in backward_slice(tile_anchors, include_roots=False)
        if _produces_float_tile(op) and not is_tma_load(op)
    )

    for op in all_ops:
        if is_tma_load(op):
            op.set_attr(ROLE_ATTR, ROLE_LOAD)
        elif op in tile_ops:
            op.set_attr(ROLE_ATTR, ROLE_TILE)
        elif op in iteration_ops:
            op.set_attr(ROLE_ATTR, ROLE_ITERATION)
        else:
            op.set_attr(ROLE_ATTR, ROLE_OTHER)


def _carried_update_ops(value) -> list[Operation]:
    """The ops computing the next-iteration value of a loop-carried coordinate."""
    from repro.ir.dialects import scf
    from repro.ir.operation import BlockArgument

    if not isinstance(value, BlockArgument):
        return []
    owner = value.block.parent_op
    if not isinstance(owner, scf.ForOp) or value.index == 0:
        return []
    update = defining_op(owner.yield_op.operands[value.index - 1])
    return [update] if update is not None else []


def _is_scalar_glue(op: Operation) -> bool:
    """Iteration statements are scalar (non-tile) computations."""
    if op.regions:
        return False
    for res in op.results:
        if isinstance(res.type, TensorType):
            return False
    return True


def _produces_float_tile(op: Operation) -> bool:
    from repro.ir.types import ScalarType

    for res in op.results:
        ty = res.type
        if not isinstance(ty, TensorType):
            continue
        elem = ty.element_type
        if isinstance(elem, ScalarType) and elem.is_float:
            return True
    return False


def role_of(op: Operation) -> str:
    return op.get_attr(ROLE_ATTR, ROLE_OTHER)
