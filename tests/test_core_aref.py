"""Tests (including property-based) for the aref operational semantics (Fig. 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aref import ArefRing, ArefSlot, ArefStateError


class TestSlotProtocol:
    def test_initial_state_is_empty(self):
        slot = ArefSlot()
        assert slot.state_name == "EMPTY"
        assert slot.can_put and not slot.can_get

    def test_put_get_consumed_cycle(self):
        slot = ArefSlot()
        slot.put("tile")
        assert slot.state_name == "FULL"
        assert slot.get() == "tile"
        assert slot.state_name == "BORROWED"
        slot.consumed()
        assert slot.state_name == "EMPTY"

    def test_put_on_full_rejected(self):
        slot = ArefSlot()
        slot.put(1)
        with pytest.raises(ArefStateError, match="put requires EMPTY"):
            slot.put(2)

    def test_put_on_borrowed_rejected(self):
        slot = ArefSlot()
        slot.put(1)
        slot.get()
        with pytest.raises(ArefStateError):
            slot.put(2)

    def test_get_on_empty_rejected(self):
        with pytest.raises(ArefStateError, match="get requires FULL"):
            ArefSlot().get()

    def test_get_twice_rejected(self):
        slot = ArefSlot()
        slot.put(1)
        slot.get()
        with pytest.raises(ArefStateError):
            slot.get()

    def test_consumed_without_get_rejected(self):
        slot = ArefSlot()
        with pytest.raises(ArefStateError):
            slot.consumed()
        slot.put(1)
        with pytest.raises(ArefStateError):
            slot.consumed()

    def test_history_records_operations(self):
        slot = ArefSlot()
        slot.put(1)
        slot.get()
        slot.consumed()
        assert slot.history == ["put", "get", "consumed"]


class TestRing:
    def test_slots_are_independent(self):
        ring = ArefRing(depth=2)
        ring.put(0, "a")
        ring.put(1, "b")
        assert ring.get(0) == "a"
        assert ring.get(1) == "b"

    def test_index_wraps_modulo_depth(self):
        ring = ArefRing(depth=2)
        ring.put(0, "a")
        assert ring.slot(2) is ring.slot(0)
        with pytest.raises(ArefStateError):
            ring.put(2, "again")  # same physical slot, still FULL

    def test_producer_lead_bounded_by_depth(self):
        ring = ArefRing(depth=3)
        for k in range(3):
            ring.put(k, k)
        with pytest.raises(ArefStateError):
            ring.put(3, 3)
        # consuming slot 0 re-enables the producer
        ring.get(0)
        ring.consumed(0)
        ring.put(3, 3)

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            ArefRing(depth=0)

    def test_states_snapshot(self):
        ring = ArefRing(depth=2)
        ring.put(0, 1)
        assert ring.states == ("FULL", "EMPTY")


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

_ops = st.lists(st.sampled_from(["put", "get", "consumed"]), max_size=40)


def _is_legal_prefix(ops):
    """Reference acceptance: a trace is legal iff it follows (put get consumed)*."""
    expected_cycle = ["put", "get", "consumed"]
    pos = 0
    for op in ops:
        if op != expected_cycle[pos % 3]:
            return False
        pos += 1
    return True


class TestProtocolProperties:
    @given(_ops)
    @settings(max_examples=200, deadline=None)
    def test_exactly_the_cyclic_traces_are_accepted(self, ops):
        slot = ArefSlot()
        legal = _is_legal_prefix(ops)
        try:
            for op in ops:
                getattr(slot, op)(1) if op == "put" else getattr(slot, op)()
            accepted = True
        except ArefStateError:
            accepted = False
        assert accepted == legal

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=40))
    @settings(max_examples=100, deadline=None)
    def test_in_order_streaming_never_faults_and_preserves_values(self, depth, n):
        """Producer at most `depth` ahead of consumer: the FIFO always works."""
        ring = ArefRing(depth=depth)
        produced = 0
        consumed = 0
        received = []
        while consumed < n:
            while produced < min(n, consumed + depth):
                ring.put(produced, produced)
                produced += 1
            received.append(ring.get(consumed))
            ring.consumed(consumed)
            consumed += 1
        assert received == list(range(n))

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_overrunning_the_ring_always_faults(self, depth, extra):
        ring = ArefRing(depth=depth)
        for k in range(depth):
            ring.put(k, k)
        with pytest.raises(ArefStateError):
            ring.put(depth, depth)

    @given(_ops)
    @settings(max_examples=100, deadline=None)
    def test_state_invariant_exactly_one_of_three(self, ops):
        slot = ArefSlot()
        for op in ops:
            try:
                getattr(slot, op)(1) if op == "put" else getattr(slot, op)()
            except ArefStateError:
                break
            assert slot.state_name in ("EMPTY", "FULL", "BORROWED")
            state = slot.state
            assert (state.empty, state.full) in [(True, False), (False, True), (False, False)]
