"""The vectorized codegen engine: emitter, cache tiers, selection matrix.

The differential guarantees (codegen bit-identical to the interpreter and to
plans across kernel families and the fig8--12 sweeps) live in
``test_fuzz_differential.py`` and ``test_plan_differential.py``; this module
covers the machinery around them:

* the plan-to-source emitter's artifacts (source shape, load/store root
  analysis, the non-vectorizable fallback reasons, payload round-trips);
* the two-tier codegen artifact cache -- including the headline cold-start
  guarantee: a **second process** re-running a codegen sweep with
  ``REPRO_CACHE_DIR`` set performs *zero* emissions (``codegen_emitted``
  stays 0, disk-hit counters prove the reuse) with bit-identical results;
* the engine-selection matrix: ``codegen=True`` / ``REPRO_SIM_CODEGEN``
  select the :class:`CodegenExecutor`, runtime hazards (read/write aliasing)
  fall back per launch, and explicitly contradictory knob combinations raise
  :class:`SimulationError` at construction time (one test per matrix cell).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.options import (
    CompileOptions,
    NAIVE_OPTIONS,
    TRITON_BASELINE_OPTIONS,
)
from repro.frontend import kernel, tl
from repro.gpusim.codegen import CodegenArtifact, emit_artifact, get_codegen
from repro.gpusim.config import DEFAULT_CONFIG
from repro.gpusim.device import Device
from repro.gpusim.engine import SimulationError
from repro.gpusim.executors import CodegenExecutor, SerialExecutor
from repro.kernels.gemm import GemmProblem, run_gemm
from repro.perf.counters import COUNTERS

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"

WS_OPTIONS = CompileOptions(enable_warp_specialization=True, aref_depth=2,
                            mma_pipeline_depth=2, num_consumer_groups=2)

SMALL_GEMM = GemmProblem(M=96, N=64, K=64, block_m=32, block_n=32, block_k=32,
                         seed=11)


def _compiled_gemm(options, problem=SMALL_GEMM, device=None):
    from repro.kernels.gemm import make_gemm_inputs, matmul_kernel

    device = device or Device()
    args, _, _ = make_gemm_inputs(problem, device)
    return device.compile(matmul_kernel, args, problem.constexprs(), options)


# ---------------------------------------------------------------------------
# The emitter and its artifacts
# ---------------------------------------------------------------------------


class TestEmitter:
    def test_single_region_gemm_is_vectorizable(self):
        artifact = emit_artifact(_compiled_gemm(NAIVE_OPTIONS))
        assert artifact.vectorizable and artifact.reason is None
        assert "def cta_batch(" in artifact.source
        # a_desc/b_desc are read, c_ptr is written: the executor's aliasing
        # hazard check is built on these indices.
        assert artifact.load_roots == (0, 1)
        assert artifact.store_roots == (2,)

    def test_pipelined_gemm_is_vectorizable(self):
        artifact = emit_artifact(_compiled_gemm(TRITON_BASELINE_OPTIONS))
        assert artifact.vectorizable
        # The smem ring of the software-pipelined lowering becomes a batched
        # ndarray ring, not a fallback.
        assert "np.zeros((B,)" in artifact.source

    def test_warp_specialized_gemm_is_not(self):
        artifact = emit_artifact(_compiled_gemm(WS_OPTIONS))
        assert not artifact.vectorizable
        assert "warp-specialized" in artifact.reason
        with pytest.raises(SimulationError):
            artifact.callable()

    def test_payload_round_trip_is_executable(self):
        artifact = emit_artifact(_compiled_gemm(NAIVE_OPTIONS))
        clone = CodegenArtifact.from_payload(
            json.loads(json.dumps(artifact.payload())))
        assert clone.source == artifact.source
        assert tuple(clone.load_roots) == artifact.load_roots
        assert clone.callable() is clone.callable()  # exec'd once, memoized

    def test_get_codegen_memoizes_on_the_artifact(self):
        compiled = _compiled_gemm(NAIVE_OPTIONS)
        compiled.codegens = {}
        emitted = COUNTERS.codegen_emitted
        hits = COUNTERS.codegen_memory_hits
        first = get_codegen(compiled, DEFAULT_CONFIG, True)
        second = get_codegen(compiled, DEFAULT_CONFIG, True)
        assert first is second
        assert COUNTERS.codegen_emitted == emitted + 1
        assert COUNTERS.codegen_memory_hits == hits + 1


# ---------------------------------------------------------------------------
# Engine selection + the validation matrix (one test per cell)
# ---------------------------------------------------------------------------


class TestEngineSelection:
    def test_codegen_knob_selects_the_codegen_executor(self):
        assert isinstance(Device(codegen=True).executor(), CodegenExecutor)

    def test_env_knob_selects_the_codegen_executor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CODEGEN", "1")
        assert isinstance(Device().executor(), CodegenExecutor)
        monkeypatch.setenv("REPRO_SIM_CODEGEN", "0")
        assert not isinstance(Device().executor(), CodegenExecutor)

    def test_codegen_composes_with_workers(self):
        from repro.gpusim.executors import ShardedExecutor

        executor = Device(codegen=True, workers=2).executor()
        assert isinstance(executor, CodegenExecutor)
        assert isinstance(executor._fallback, ShardedExecutor)

    def test_cell_use_plans_false_with_pool(self):
        with pytest.raises(SimulationError, match="pool"):
            Device(use_plans=False, pool=2)

    def test_cell_collect_trace_with_workers_degrades(self):
        """workers= is a hint; sharding has always degraded it silently
        (pinned by tests/test_parallel.py), so no error -- serial selection."""
        device = Device(collect_trace=True, workers=2)
        assert isinstance(device.executor(), SerialExecutor)

    def test_cell_collect_trace_with_pool(self):
        with pytest.raises(SimulationError, match="pool"):
            Device(collect_trace=True, pool=2)

    def test_cell_collect_trace_with_codegen(self):
        with pytest.raises(SimulationError, match="codegen"):
            Device(collect_trace=True, codegen=True)

    def test_env_resolved_combos_degrade_gracefully(self, monkeypatch):
        """CI-wide env knobs must not make tracing devices unconstructable."""
        monkeypatch.setenv("REPRO_SIM_WORKERS", "2")
        monkeypatch.setenv("REPRO_SIM_CODEGEN", "1")
        device = Device(collect_trace=True)  # must not raise
        assert isinstance(device.executor(), SerialExecutor)

    def test_matrix_lives_in_one_resolver(self):
        from repro.gpusim.executors import validate_engine_settings

        with pytest.raises(SimulationError):
            validate_engine_settings(collect_trace=True, codegen=True)
        # Unset knobs (None) are never judged.
        validate_engine_settings(collect_trace=True)
        validate_engine_settings(use_plans=False)


# ---------------------------------------------------------------------------
# Per-launch fallback hazards
# ---------------------------------------------------------------------------


@kernel
def _doubler_kernel(x_ptr, out_ptr, n, BLOCK: tl.constexpr):
    pid = tl.program_id(axis=0)
    offs = pid * BLOCK + tl.arange(0, BLOCK)
    mask = offs < n
    x = tl.load(x_ptr + offs, mask=mask, other=0.0)
    tl.store(out_ptr + offs, x + x, mask=mask)


class TestRuntimeFallback:
    def test_aliased_read_write_falls_back_and_stays_correct(self):
        """x_ptr is out_ptr: batched loads would see batched stores."""
        data = np.arange(64, dtype=np.float32)
        device = Device(codegen=True)
        ptr = device.pointer(data.copy(), "f32")
        fallbacks = COUNTERS.codegen_fallback_launches
        launches = COUNTERS.codegen_launches
        device.run(_doubler_kernel, grid=4,
                   args={"x_ptr": ptr, "out_ptr": ptr, "n": 64},
                   constexprs={"BLOCK": 16})
        assert COUNTERS.codegen_fallback_launches == fallbacks + 1
        assert COUNTERS.codegen_launches == launches
        assert np.array_equal(ptr.buffer.to_numpy(), data * 2)

    def test_distinct_buffers_vectorize(self):
        data = np.arange(64, dtype=np.float32)
        device = Device(codegen=True)
        x = device.pointer(data.copy(), "f32")
        out = device.pointer(np.zeros(64, np.float32), "f32")
        launches = COUNTERS.codegen_launches
        batched = COUNTERS.codegen_ctas_batched
        device.run(_doubler_kernel, grid=4,
                   args={"x_ptr": x, "out_ptr": out, "n": 64},
                   constexprs={"BLOCK": 16})
        assert COUNTERS.codegen_launches == launches + 1
        assert COUNTERS.codegen_ctas_batched == batched + 4
        assert np.array_equal(out.buffer.to_numpy(), data * 2)


# ---------------------------------------------------------------------------
# Artifact resolution across the compile-cache tiers
# ---------------------------------------------------------------------------


class TestCacheIntegration:
    def test_workers_resolve_codegen_artifacts_by_fingerprint(self):
        """The pool's warm path: fingerprint lookup carries the codegens."""
        from repro.core.service import get_compiler_service

        compiled = _compiled_gemm(NAIVE_OPTIONS, device=Device(codegen=True))
        resolved = get_compiler_service().lookup(compiled.fingerprint)
        assert resolved is compiled
        assert any(art.vectorizable for art in resolved.codegens.values())

    def test_second_process_emits_nothing(self, tmp_path):
        """Warm-process cold start: the sweep re-runs on disk-tier artifacts."""
        cache_dir = tmp_path / "artifact-cache"

        cold = _run_sweep_process(tmp_path, cache_dir)
        assert cold["emitted"] >= 2
        assert cold["disk_writes"] >= cold["emitted"]
        assert cold["disk_hits"] == 0
        assert cold["launches"] == len(cold["results"])

        warm = _run_sweep_process(tmp_path, cache_dir)
        assert warm["emitted"] == 0  # every artifact came from the disk tier
        assert warm["disk_hits"] >= cold["emitted"]
        assert warm["launches"] == len(warm["results"])
        assert warm["results"] == cold["results"]


SWEEP_DRIVER = """\
import json

import numpy as np

from repro.core.options import NAIVE_OPTIONS, TRITON_BASELINE_OPTIONS
from repro.gpusim.device import Device
from repro.kernels.gemm import GemmProblem, run_gemm
from repro.perf.counters import COUNTERS

results = []
for opts in (NAIVE_OPTIONS, TRITON_BASELINE_OPTIONS):
    for mn in (64, 96):
        problem = GemmProblem(M=mn, N=mn, K=64, block_m=32, block_n=32,
                              block_k=32, seed=5)
        result, c = run_gemm(Device(codegen=True), problem, opts)
        results.append([result.cycles, c.astype(np.float64).tobytes().hex()])
print(json.dumps({
    "results": results,
    "emitted": COUNTERS.codegen_emitted,
    "disk_hits": COUNTERS.codegen_disk_hits,
    "disk_writes": COUNTERS.codegen_disk_writes,
    "launches": COUNTERS.codegen_launches,
    "fallbacks": COUNTERS.codegen_fallback_launches,
}))
"""


def _run_sweep_process(tmp_path, cache_dir) -> dict:
    driver = tmp_path / "codegen_sweep.py"
    driver.write_text(SWEEP_DRIVER)
    env = {
        "PYTHONPATH": str(SRC_DIR),
        "REPRO_CACHE_DIR": str(cache_dir),
        "PATH": "/usr/bin:/bin",
    }
    proc = subprocess.run(
        [sys.executable, str(driver)],
        capture_output=True, text=True, env=env, cwd=str(tmp_path),
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.strip().splitlines()[-1])


# ---------------------------------------------------------------------------
# Perf mode: timing dedup without payloads
# ---------------------------------------------------------------------------


class TestPerfMode:
    def test_perf_rows_match_plans(self):
        problem = GemmProblem(M=2048, N=2048, K=1024)
        r_p, _ = run_gemm(Device(mode="performance"), problem,
                          TRITON_BASELINE_OPTIONS)
        launches = COUNTERS.codegen_launches
        r_c, _ = run_gemm(Device(mode="performance", codegen=True), problem,
                          TRITON_BASELINE_OPTIONS)
        assert COUNTERS.codegen_launches == launches + 1
        assert r_c.cycles == r_p.cycles
        assert r_c.per_cta_cycles == r_p.per_cta_cycles
        assert r_c.bytes_copied == r_p.bytes_copied
