"""Unit tests for dialect op constructors and their type inference."""

import pytest

from repro.ir import Builder, FuncOp, IRError
from repro.ir.dialects import arith, gpu, tawa, tt, ensure_loaded, registry
from repro.ir.types import (
    ArefSlotType,
    ArefType,
    FunctionType,
    MBarrierType,
    PointerType,
    SmemBufferType,
    TensorDescType,
    TensorType,
    f16,
    f32,
    i1,
    i32,
)

ensure_loaded()


@pytest.fixture
def builder():
    fn = FuncOp("f", FunctionType((TensorDescType(f16), PointerType(f16), i32), ()))
    return Builder(fn.body), fn


class TestArithOps:
    def test_binary_elementwise_broadcast(self, builder):
        b, _ = builder
        lhs = b.create(tt.FullOp, (128, 1), 1.0, f32).result
        rhs = b.create(tt.FullOp, (1, 64), 2.0, f32).result
        add = b.create(arith.AddFOp, lhs, rhs)
        assert add.result.type == TensorType((128, 64), f32)

    def test_binary_scalar_tensor_mix(self, builder):
        b, fn = builder
        tile = b.create(tt.FullOp, (8, 8), 0.0, f32).result
        scalar = arith.constant(b, 2.0, f32)
        mul = b.create(arith.MulFOp, tile, scalar)
        assert mul.result.type == TensorType((8, 8), f32)

    def test_cmp_produces_i1(self, builder):
        b, fn = builder
        rng = b.create(tt.MakeRangeOp, 0, 64).result
        cmp = b.create(arith.CmpIOp, "slt", rng, arith.c_i32(b, 32))
        assert cmp.result.type == TensorType((64,), i1)

    def test_cmp_rejects_bad_predicate(self, builder):
        b, _ = builder
        c = arith.c_i32(b, 1)
        with pytest.raises(IRError):
            arith.CmpIOp("weird", c, c)

    def test_cast_changes_element_type(self, builder):
        b, _ = builder
        tile = b.create(tt.FullOp, (16, 16), 0.0, f32).result
        cast = b.create(arith.CastOp, tile, f16)
        assert cast.result.type == TensorType((16, 16), f16)

    def test_constant_helpers(self, builder):
        b, _ = builder
        v = arith.c_i32(b, 7)
        assert arith.is_constant(v, 7)
        assert arith.constant_value(v) == 7
        assert arith.constant_value(b.create(arith.AddIOp, v, v).result) is None

    def test_py_impl_registered_for_every_binary(self):
        for name in ("arith.addi", "arith.mulf", "arith.divsi", "arith.maxf"):
            info = registry.lookup(name)
            assert info is not None and info.pure


class TestTTOps:
    def test_tma_load_shape_inference(self, builder):
        b, fn = builder
        load = b.create(tt.TmaLoadOp, fn.argument(0), [arith.c_i32(b, 0), arith.c_i32(b, 0)],
                        (128, 64))
        assert load.result.type == TensorType((128, 64), f16)
        assert load.tile_shape == (128, 64)

    def test_tma_load_requires_descriptor(self, builder):
        b, fn = builder
        with pytest.raises(IRError):
            tt.TmaLoadOp(fn.argument(1), [arith.c_i32(b, 0)], (64,))

    def test_tma_load_coord_rank_mismatch(self, builder):
        b, fn = builder
        with pytest.raises(IRError, match="rank mismatch"):
            tt.TmaLoadOp(fn.argument(0), [arith.c_i32(b, 0)], (128, 64))

    def test_dot_type_inference_and_flops(self, builder):
        b, fn = builder
        a = b.create(tt.FullOp, (128, 64), 0.0, f16).result
        bb = b.create(tt.FullOp, (64, 256), 0.0, f16).result
        dot = b.create(tt.DotOp, a, bb)
        assert dot.result.type == TensorType((128, 256), f32)
        assert dot.flops == 2 * 128 * 256 * 64

    def test_dot_shape_mismatch(self, builder):
        b, _ = builder
        a = b.create(tt.FullOp, (128, 64), 0.0, f16).result
        bad = b.create(tt.FullOp, (32, 256), 0.0, f16).result
        with pytest.raises(IRError):
            tt.DotOp(a, bad)

    def test_dot_accumulator_type_checked(self, builder):
        b, _ = builder
        a = b.create(tt.FullOp, (16, 8), 0.0, f16).result
        bb = b.create(tt.FullOp, (8, 16), 0.0, f16).result
        wrong_acc = b.create(tt.FullOp, (16, 16), 0.0, f16).result
        with pytest.raises(IRError):
            tt.DotOp(a, bb, wrong_acc)

    def test_reduce_drops_axis(self, builder):
        b, _ = builder
        tile = b.create(tt.FullOp, (64, 32), 0.0, f32).result
        red = b.create(tt.ReduceOp, tile, 1, "max")
        assert red.results[0].type == TensorType((64,), f32)

    def test_expand_dims_and_broadcast(self, builder):
        b, _ = builder
        row = b.create(tt.MakeRangeOp, 0, 64).result
        col = b.create(tt.ExpandDimsOp, row, 1)
        assert col.result.type == TensorType((64, 1), i32)
        wide = b.create(tt.BroadcastOp, col.result, (64, 32))
        assert wide.result.type == TensorType((64, 32), i32)

    def test_trans_requires_rank2(self, builder):
        b, _ = builder
        vec = b.create(tt.MakeRangeOp, 0, 8).result
        with pytest.raises(IRError):
            tt.TransOp(vec)

    def test_addptr_builds_pointer_tensors(self, builder):
        b, fn = builder
        offs = b.create(tt.MakeRangeOp, 0, 16).result
        ptrs = b.create(tt.AddPtrOp, fn.argument(1), offs)
        assert isinstance(ptrs.result.type, TensorType)
        assert isinstance(ptrs.result.type.element_type, PointerType)

    def test_store_with_mask_records_flag(self, builder):
        b, fn = builder
        offs = b.create(tt.MakeRangeOp, 0, 16).result
        ptrs = b.create(tt.AddPtrOp, fn.argument(1), offs).result
        vals = b.create(tt.FullOp, (16,), 0.0, f16).result
        mask = b.create(arith.CmpIOp, "slt", offs, arith.c_i32(b, 8)).result
        store = b.create(tt.StoreOp, ptrs, vals, mask)
        assert store.mask is mask


class TestTawaOps:
    def test_create_aref_and_slot(self, builder):
        b, _ = builder
        payload = [TensorType((128, 64), f16), TensorType((256, 64), f16)]
        aref = b.create(tawa.CreateArefOp, payload, 3)
        assert isinstance(aref.result.type, ArefType)
        assert aref.depth == 3
        slot = b.create(tawa.ArefSlotOp, aref.result, arith.c_i32(b, 0))
        assert isinstance(slot.result.type, ArefSlotType)

    def test_put_arity_and_types_checked(self, builder):
        b, _ = builder
        payload = [TensorType((8, 8), f16)]
        aref = b.create(tawa.CreateArefOp, payload, 1)
        slot = b.create(tawa.ArefSlotOp, aref.result, arith.c_i32(b, 0)).result
        good = b.create(tt.FullOp, (8, 8), 0.0, f16).result
        b.create(tawa.PutOp, slot, [good])
        with pytest.raises(IRError):
            tawa.PutOp(slot, [])
        wrong = b.create(tt.FullOp, (8, 8), 0.0, f32).result
        with pytest.raises(IRError):
            tawa.PutOp(slot, [wrong])

    def test_get_results_match_payload(self, builder):
        b, _ = builder
        payload = [TensorType((8, 8), f16), TensorType((4, 4), f16)]
        aref = b.create(tawa.CreateArefOp, payload, 2)
        slot = b.create(tawa.ArefSlotOp, aref.result, arith.c_i32(b, 1)).result
        get = b.create(tawa.GetOp, slot)
        assert [r.type for r in get.results] == payload

    def test_warp_group_roles(self):
        wg = tawa.WarpGroupOp(0, tawa.PRODUCER_ROLE)
        assert wg.is_producer and not wg.is_consumer
        wg2 = tawa.WarpGroupOp(1, tawa.CONSUMER_ROLE, replicas=2)
        assert wg2.replicas == 2
        with pytest.raises(IRError):
            tawa.WarpGroupOp(0, "manager")

    def test_aref_depth_must_be_positive(self):
        with pytest.raises(IRError):
            tawa.CreateArefOp([TensorType((4, 4), f16)], 0)


class TestGpuOps:
    def test_alloc_smem_bytes(self, builder):
        b, _ = builder
        alloc = b.create(gpu.AllocSmemOp, (2, 128, 64), f16)
        assert alloc.num_bytes == 2 * 128 * 64 * 2
        assert isinstance(alloc.result.type, SmemBufferType)

    def test_smem_slice_drops_leading_dim(self, builder):
        b, _ = builder
        ring = b.create(gpu.AllocSmemOp, (3, 64, 64), f16).result
        view = b.create(gpu.SmemSliceOp, ring, arith.c_i32(b, 2))
        assert view.result.type == SmemBufferType((64, 64), f16)

    def test_mbarrier_alloc_metadata(self, builder):
        b, _ = builder
        bars = b.create(gpu.MBarrierAllocOp, 2, 3, name="empty")
        assert bars.arrive_count == 2
        assert bars.count == 3
        assert isinstance(bars.results[0].type, MBarrierType)

    def test_wgmma_shapes_and_transpose(self, builder):
        b, _ = builder
        a = b.create(gpu.AllocSmemOp, (128, 64), f16).result
        bt = b.create(gpu.AllocSmemOp, (256, 64), f16).result
        acc = b.create(tt.FullOp, (128, 256), 0.0, f32).result
        mma = b.create(gpu.WgmmaOp, a, bt, acc, True)
        assert mma.result.type == TensorType((128, 256), f32)
        assert mma.flops == 2 * 128 * 256 * 64

    def test_wgmma_rejects_bad_acc(self, builder):
        b, _ = builder
        a = b.create(gpu.AllocSmemOp, (128, 64), f16).result
        bt = b.create(gpu.AllocSmemOp, (64, 256), f16).result
        acc = b.create(tt.FullOp, (64, 64), 0.0, f32).result
        with pytest.raises(IRError):
            gpu.WgmmaOp(a, bt, acc)

    def test_tma_async_load_operand_accessors(self, builder):
        b, fn = builder
        ring = b.create(gpu.AllocSmemOp, (2, 128, 64), f16).result
        view = b.create(gpu.SmemSliceOp, ring, arith.c_i32(b, 0)).result
        bars = b.create(gpu.MBarrierAllocOp, 0, 2).results[0]
        c0 = arith.c_i32(b, 0)
        op = b.create(gpu.TmaAsyncLoadOp, fn.argument(0), [c0, c0], view, bars, c0)
        assert op.smem is view
        assert op.mbarrier is bars
        assert len(op.coords) == 2
        assert op.bytes == 128 * 64 * 2
