"""End-to-end functional correctness of the attention kernel."""

import numpy as np
import pytest

from repro.core.options import CompileOptions, NAIVE_OPTIONS, TRITON_BASELINE_OPTIONS
from repro.gpusim.device import Device
from repro.kernels.attention import (
    AttentionProblem,
    attention_reference,
    check_attention,
    run_attention,
)


@pytest.fixture(scope="module")
def device():
    return Device(mode="functional")


def small_problem(**kwargs):
    defaults = dict(batch=1, heads=2, seq_len=128, head_dim=64,
                    block_m=64, block_n=64, causal=False)
    defaults.update(kwargs)
    return AttentionProblem(**defaults)


class TestAttentionCorrectness:
    @pytest.mark.parametrize("options", [
        NAIVE_OPTIONS,
        TRITON_BASELINE_OPTIONS,
        CompileOptions(lower_to="tawa"),
        CompileOptions(),
        CompileOptions(num_consumer_groups=2),
        CompileOptions(coarse_grained_pipelining=False),
        CompileOptions(aref_depth=3, num_consumer_groups=2),
    ], ids=["naive", "triton", "aref-midlevel", "tawa", "tawa-coop",
            "tawa-no-rotation", "tawa-deep"])
    def test_non_causal_matches_numpy(self, device, options):
        check_attention(device, small_problem(), options)

    @pytest.mark.parametrize("options", [
        TRITON_BASELINE_OPTIONS,
        CompileOptions(),
        CompileOptions(num_consumer_groups=2),
    ], ids=["triton", "tawa", "tawa-coop"])
    def test_causal_matches_numpy(self, device, options):
        check_attention(device, small_problem(causal=True), options)

    def test_rectangular_blocks(self, device):
        check_attention(device, small_problem(block_m=32, block_n=64), CompileOptions())

    def test_multiple_heads_and_batches(self, device):
        check_attention(device, small_problem(batch=2, heads=3, seq_len=64), CompileOptions())

    def test_fp8_attention(self, device):
        check_attention(device, small_problem(dtype="f8e4m3"), CompileOptions(), rtol=5e-2,
                        atol=5e-2)

    def test_reference_softmax_rows_sum_to_one(self):
        problem = small_problem()
        rng = np.random.default_rng(0)
        q = rng.standard_normal((problem.rows, problem.head_dim), dtype=np.float32)
        out = attention_reference(q, q, q, problem)
        assert out.shape == (problem.rows, problem.head_dim)
        assert np.isfinite(out).all()

    def test_causal_output_differs_from_non_causal(self, device):
        _, causal_out = run_attention(device, small_problem(causal=True), CompileOptions())
        _, plain_out = run_attention(device, small_problem(causal=False), CompileOptions())
        assert not np.allclose(causal_out, plain_out)

    def test_flops_accounting_halved_for_causal(self):
        causal = small_problem(causal=True)
        full = small_problem(causal=False)
        assert causal.flops == pytest.approx(full.flops / 2)
