"""The workload registry, the four new LLM kernel scenarios and the CLI.

Covers the tentpole of the workload-registry PR:

* registry behaviour (registration, lookup, duplicate protection);
* functional correctness of softmax / LayerNorm / split-K GEMM / fused
  elementwise against their NumPy references, across compilation paths;
* bit-identical results across the interpreter, execution plans and
  2-worker sharded execution for every new workload;
* :func:`repro.experiments.common.measure_sweep` resolving points through
  the registry, including the multi-launch split-K pipeline;
* the ``python -m repro.workloads`` CLI (list / functional run / perf sweep).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.options import CompileOptions, NAIVE_OPTIONS, TRITON_BASELINE_OPTIONS
from repro.experiments.common import SweepPoint, measure_sweep, measure_workload, perf_device
from repro.gpusim.device import Device
from repro.kernels.fused_elementwise import (
    ACT_GELU,
    ACT_RELU,
    ACT_SILU,
    FusedElementwiseProblem,
    check_fused_elementwise,
    run_fused_elementwise,
)
from repro.kernels.layernorm import LayerNormProblem, check_layernorm, run_layernorm
from repro.kernels.softmax import SoftmaxProblem, check_softmax, run_softmax
from repro.kernels.splitk_gemm import (
    SplitKGemmProblem,
    check_splitk_gemm,
    run_splitk_gemm,
)
from repro import workloads
from repro.workloads import Workload
from repro.workloads.cli import main as cli_main


SMALL_SOFTMAX = SoftmaxProblem(rows=12, cols=75)
SMALL_LAYERNORM = LayerNormProblem(rows=10, cols=90)
SMALL_SPLITK = SplitKGemmProblem(M=64, N=64, K=256, splits=2, block_m=32,
                                 block_n=32, block_k=32, reduce_block=64)
SMALL_FUSED = FusedElementwiseProblem(rows=9, cols=70, activation=ACT_GELU)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_all_eight_workloads_registered(self):
        names = workloads.list_workloads()
        assert len(names) >= 8
        for expected in ("gemm", "batched_gemm", "grouped_gemm", "attention",
                         "softmax", "layernorm", "splitk_gemm",
                         "fused_elementwise"):
            assert expected in names

    def test_get_returns_complete_records(self):
        for name in workloads.list_workloads():
            workload = workloads.get(name)
            assert workload.name == name
            assert workload.description
            assert workload.problem_cls is not None
            assert isinstance(workload.check_problem(),
                              workload.problem_cls)
            assert workload.reduced_sweep(), f"{name} has an empty sweep"
            assert workload.bytes_moved(workload.check_problem()) > 0
            assert workload.flops(workload.check_problem()) > 0

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(KeyError, match="softmax"):
            workloads.get("nope")

    def test_duplicate_registration_rejected(self):
        existing = workloads.get("softmax")
        with pytest.raises(ValueError, match="already registered"):
            workloads.register(existing)

    def test_register_unregister_round_trip(self):
        probe = Workload(
            name="_probe",
            description="test-only",
            problem_cls=SoftmaxProblem,
            make_specs=lambda d, p, o: [],
            check=lambda d, p, o: None,
            bytes_moved=lambda p: 1.0,
        )
        workloads.register(probe)
        try:
            assert "_probe" in workloads.list_workloads()
            assert workloads.get("_probe") is probe
        finally:
            workloads.unregister("_probe")
        assert "_probe" not in workloads.list_workloads()


# ---------------------------------------------------------------------------
# Functional correctness of the new kernels
# ---------------------------------------------------------------------------


OPTION_PATHS = [CompileOptions(), TRITON_BASELINE_OPTIONS, NAIVE_OPTIONS]


class TestNewKernels:
    @pytest.mark.parametrize("options", OPTION_PATHS, ids=["default", "triton", "naive"])
    def test_softmax_matches_reference(self, functional_device, options):
        check_softmax(functional_device, SMALL_SOFTMAX, options)

    def test_softmax_rows_sum_to_one(self, functional_device):
        _, out = run_softmax(functional_device, SMALL_SOFTMAX)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-5)

    def test_softmax_exact_block_width(self, functional_device):
        # cols == padded COLS: the mask is all-true, no ragged lanes.
        check_softmax(functional_device, SoftmaxProblem(rows=4, cols=64))

    @pytest.mark.parametrize("options", OPTION_PATHS, ids=["default", "triton", "naive"])
    def test_layernorm_matches_reference(self, functional_device, options):
        check_layernorm(functional_device, SMALL_LAYERNORM, options)

    def test_layernorm_output_is_normalized(self, functional_device):
        problem = LayerNormProblem(rows=8, cols=128)
        _, out = run_layernorm(functional_device, problem)
        # With w ~ N(1, .5), b ~ N(0, .5) the raw normalized rows are recovered
        # by inverting the affine part of the reference inputs.
        from repro.kernels.layernorm import make_layernorm_inputs

        _, (x, w, b) = make_layernorm_inputs(problem, functional_device)
        raw = (out - b) / w
        np.testing.assert_allclose(raw.mean(axis=1), 0.0, atol=1e-4)
        np.testing.assert_allclose(raw.std(axis=1), 1.0, atol=1e-2)

    @pytest.mark.parametrize("splits", [1, 2, 4])
    def test_splitk_matches_reference(self, functional_device, splits):
        problem = SplitKGemmProblem(M=64, N=64, K=256, splits=splits,
                                    block_m=32, block_n=32, block_k=32,
                                    reduce_block=64)
        check_splitk_gemm(functional_device, problem)

    def test_splitk_warp_specialized_path(self, functional_device, ws_options):
        check_splitk_gemm(functional_device, SMALL_SPLITK, ws_options)

    def test_splitk_rejects_misaligned_k(self):
        with pytest.raises(ValueError, match="multiple of"):
            SplitKGemmProblem(M=64, N=64, K=100, splits=2, block_k=32)

    def test_splitk_matches_plain_gemm(self, functional_device):
        """Split-K over the same data agrees with the one-kernel GEMM."""
        from repro.kernels.gemm import GemmProblem, run_gemm

        _, c_split = run_splitk_gemm(functional_device, SMALL_SPLITK)
        gemm = GemmProblem(M=64, N=64, K=256, block_m=32, block_n=32,
                           block_k=32, seed=SMALL_SPLITK.seed)
        _, c_plain = run_gemm(functional_device, gemm)
        np.testing.assert_allclose(c_split.astype(np.float32),
                                   c_plain.astype(np.float32),
                                   rtol=2e-2, atol=2e-2)

    @pytest.mark.parametrize("act", [ACT_RELU, ACT_GELU, ACT_SILU])
    def test_fused_elementwise_matches_reference(self, functional_device, act):
        problem = FusedElementwiseProblem(rows=7, cols=60, activation=act)
        check_fused_elementwise(functional_device, problem)

    def test_fused_activations_specialize_distinctly(self, functional_device):
        relu = FusedElementwiseProblem(rows=4, cols=32, activation=ACT_RELU)
        silu = FusedElementwiseProblem(rows=4, cols=32, activation=ACT_SILU)
        _, out_relu = run_fused_elementwise(functional_device, relu)
        _, out_silu = run_fused_elementwise(functional_device, silu)
        assert not np.allclose(out_relu, out_silu)


# ---------------------------------------------------------------------------
# Differential: interpreter vs plans vs sharded, bit-for-bit
# ---------------------------------------------------------------------------


def _observe(engine: str, runner, problem):
    if engine == "interpreter":
        device = Device(mode="functional", use_plans=False, workers=1)
    elif engine == "plans":
        device = Device(mode="functional", use_plans=True, workers=1)
    else:
        device = Device(mode="functional", use_plans=True, workers=2)
    result, out = runner(device, problem)
    if isinstance(result, list):  # multi-launch workloads
        cycles = tuple(r.cycles for r in result)
        per_cta = tuple(tuple(r.per_cta_cycles) for r in result)
    else:
        cycles = result.cycles
        per_cta = tuple(result.per_cta_cycles)
    return cycles, per_cta, out.tobytes()


NEW_WORKLOAD_RUNNERS = [
    ("softmax", run_softmax, SMALL_SOFTMAX),
    ("layernorm", run_layernorm, SMALL_LAYERNORM),
    ("splitk_gemm", run_splitk_gemm, SMALL_SPLITK),
    ("fused_elementwise", run_fused_elementwise, SMALL_FUSED),
]


@pytest.mark.parametrize("name,runner,problem", NEW_WORKLOAD_RUNNERS,
                         ids=[row[0] for row in NEW_WORKLOAD_RUNNERS])
def test_new_workloads_bit_identical_across_engines(name, runner, problem):
    oracle = _observe("interpreter", runner, problem)
    for engine in ("plans", "sharded"):
        observed = _observe(engine, runner, problem)
        assert observed[0] == oracle[0], f"{name}: cycles diverged on {engine}"
        assert observed[1] == oracle[1], f"{name}: per-CTA cycles diverged on {engine}"
        assert observed[2] == oracle[2], f"{name}: output bytes diverged on {engine}"


# ---------------------------------------------------------------------------
# Sweeps through the registry
# ---------------------------------------------------------------------------


class TestSweepIntegration:
    def test_measure_sweep_accepts_every_registered_workload(self):
        device = perf_device()
        points = [
            SweepPoint(name, workloads.get(name).reduced_sweep()[0],
                       workloads.get(name).default_options())
            for name in workloads.list_workloads()
        ]
        values = measure_sweep(device, points)
        assert len(values) == len(points)
        assert all(v > 0.0 for v in values)

    def test_multi_launch_point_scores_once(self):
        """A split-K point expands to two launches but yields one value."""
        device = perf_device()
        problem = SplitKGemmProblem(M=256, N=256, K=4096, splits=4)
        values = measure_sweep(device, [
            SweepPoint("splitk_gemm", problem, CompileOptions()),
            SweepPoint("gemm", workloads.get("gemm").reduced_sweep()[0],
                       workloads.get("gemm").default_options()),
        ])
        assert len(values) == 2 and all(v > 0.0 for v in values)

    def test_infeasible_point_scores_zero(self):
        device = perf_device()
        values = measure_sweep(device, [SweepPoint("softmax", SMALL_SOFTMAX, None)])
        assert values == [0.0]

    def test_measure_workload_uses_registry_defaults(self):
        device = perf_device()
        value = measure_workload(device, "layernorm",
                                 LayerNormProblem(rows=2048, cols=1024))
        assert value > 0.0

    def test_functional_sweep_matches_references(self):
        """run_many-driven sweep on a functional device stays correct."""
        device = Device(mode="functional")
        problem = SMALL_SPLITK
        specs = workloads.build_sweep_specs(device, workloads.get("splitk_gemm"),
                                            problem, CompileOptions())
        device.run_many(specs)
        from repro.kernels.splitk_gemm import make_splitk_inputs, splitk_reference

        _, _, (a, b) = make_splitk_inputs(problem, device)
        out = specs[1].args["c_ptr"].buffer.to_numpy().astype(np.float32)
        np.testing.assert_allclose(out, splitk_reference(a, b, problem).astype(np.float32),
                                   rtol=2e-2, atol=2e-2)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_list_prints_every_workload(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in workloads.list_workloads():
            assert name in out

    def test_functional_run_passes(self, capsys):
        names = ["softmax", "fused_elementwise"]
        assert cli_main(["run", *names, "--mode", "functional"]) == 0
        out = capsys.readouterr().out
        assert out.count(" ok ") >= 2 or out.count("ok") >= 2

    def test_perf_smoke_run_writes_json(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        assert cli_main(["run", "softmax", "layernorm", "--mode", "perf",
                         "--sweep", "smoke", "--json", str(path)]) == 0
        capsys.readouterr()
        doc = json.loads(path.read_text())
        assert doc["mode"] == "perf"
        assert len(doc["sweep"]) == 2
        assert all(row["tflops"] > 0 for row in doc["sweep"])
        assert "compile_cache_misses" in doc["counters"]

    def test_unknown_workload_is_an_error(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "not-a-workload"])
