"""Tests for CompileOptions validation and presets."""

import pytest

from repro.core.options import (
    NAIVE_OPTIONS,
    TRITON_BASELINE_OPTIONS,
    CompileError,
    CompileOptions,
)


class TestValidation:
    def test_defaults_are_warp_specialized(self):
        opts = CompileOptions()
        assert opts.enable_warp_specialization
        assert opts.aref_depth >= opts.mma_pipeline_depth

    @pytest.mark.parametrize("field, value", [
        ("aref_depth", 0),
        ("mma_pipeline_depth", 0),
        ("num_consumer_groups", 0),
        ("num_stages", 1),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(CompileError):
            CompileOptions(**{field: value})

    def test_p_greater_than_d_rejected(self):
        """The infeasible region of Fig. 11: MMA depth beyond the aref depth."""
        with pytest.raises(CompileError, match="D >= P"):
            CompileOptions(aref_depth=1, mma_pipeline_depth=2)

    def test_p_greater_than_d_allowed_without_ws(self):
        opts = CompileOptions(enable_warp_specialization=False, aref_depth=1,
                              mma_pipeline_depth=3)
        assert opts.mma_pipeline_depth == 3

    def test_unknown_lowering_target_rejected(self):
        with pytest.raises(CompileError):
            CompileOptions(lower_to="llvm")


class TestPresetsAndHelpers:
    def test_triton_baseline_preset(self):
        assert not TRITON_BASELINE_OPTIONS.enable_warp_specialization
        assert TRITON_BASELINE_OPTIONS.software_pipelining

    def test_naive_preset(self):
        assert not NAIVE_OPTIONS.enable_warp_specialization
        assert not NAIVE_OPTIONS.software_pipelining

    def test_evolve_creates_modified_copy(self):
        base = CompileOptions()
        deeper = base.evolve(aref_depth=3)
        assert deeper.aref_depth == 3
        assert base.aref_depth == 2
        assert deeper.mma_pipeline_depth == base.mma_pipeline_depth

    def test_cache_key_distinguishes_configurations(self):
        a = CompileOptions(aref_depth=2)
        b = CompileOptions(aref_depth=3)
        assert a.cache_key() != b.cache_key()
        assert a.cache_key() == CompileOptions(aref_depth=2).cache_key()
