"""The async serve layer: batching, coalescing, backpressure, determinism.

The serve contract under test (:mod:`repro.serve`): a request submitted
through :class:`SimService` produces results **bit-identical** to a direct
``Device.run_many`` call of the same launch pipeline (the service adds no
execution semantics); concurrent identical keyed requests share one
execution -- queued *or already in flight*; a cold burst of identical
requests compiles exactly once through the singleflighted compiler service;
the admission queue sheds honestly (:class:`Busy`), drops expired deadlines
and cancelled clients at batch-formation time; and the TCP front end
round-trips all of it as typed JSON-lines replies, surviving a worker kill
mid-load through the pool's supervision.

No pytest-asyncio in the container: every test drives its own event loop
with ``asyncio.run`` from a synchronous body.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro import faults
from repro.core.options import NAIVE_OPTIONS
from repro.gpusim.device import Device
from repro.gpusim.launch import LaunchSpec
from repro.gpusim.parallel import fork_available
from repro.kernels.gemm import GemmProblem, make_gemm_inputs, matmul_kernel
from repro.perf.counters import COUNTERS
from repro.serve import (
    AsyncClient,
    Busy,
    DeadlineExceeded,
    RemoteError,
    ServePolicy,
    ServiceClosed,
    SimServer,
    SimService,
)
from repro.serve import protocol
from repro.serve.__main__ import main as serve_main
from repro.workloads import build_sweep_specs, get as get_workload

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires fork()")

#: Workload families for the serve-vs-direct differential; splitk_gemm is the
#: multi-launch pipeline case (partials + reduce inside one request).
FAMILIES = ["softmax", "fused_elementwise", "gemm", "splitk_gemm"]

#: Keep batches forming fast in tests: tiny delay, generous size.
FAST = ServePolicy(max_batch=8, max_delay=0.005)


def _gemm_spec(device: Device, seed: int = 0) -> LaunchSpec:
    """One small gemm launch with its own fresh buffers."""
    problem = GemmProblem(M=64, N=64, K=32, block_m=32, block_n=32,
                          block_k=32, seed=seed)
    args, _, _ = make_gemm_inputs(problem, device)
    return LaunchSpec(matmul_kernel, problem.grid, args,
                      problem.constexprs(), NAIVE_OPTIONS, problem.flops)


def _direct_run(name: str, device: Device):
    """The baseline a serve request must match bit-for-bit."""
    workload = get_workload(name)
    specs = build_sweep_specs(device, workload, workload.check_problem())
    results = device.run_many(specs)
    return specs, results


def _assert_results_match(served, direct):
    assert len(served) == len(direct)
    for r_s, r_d in zip(served, direct):
        assert r_s.cycles == r_d.cycles
        assert r_s.per_cta_cycles == r_d.per_cta_cycles
        assert r_s.bytes_copied == r_d.bytes_copied
        assert r_s.total_ctas == r_d.total_ctas


class _Gate:
    """Block the device's first ``run_many`` call until released.

    Installed as an instance attribute over the bound method, it lets a test
    hold one dispatch in flight (``started`` set from the dispatch thread)
    while the event loop keeps admitting -- the window in which coalescing,
    shedding, deadlines and cancellation are observable deterministically.
    """

    def __init__(self, device: Device):
        self.started = threading.Event()
        self.release = threading.Event()
        self._original = device.run_many
        self._gated_once = False
        device.run_many = self  # type: ignore[method-assign]

    def __call__(self, specs, on_result=None):
        if not self._gated_once:
            self._gated_once = True
            self.started.set()
            assert self.release.wait(30), "test gate never released"
        return self._original(specs, on_result=on_result)


# ---------------------------------------------------------------------------
# Serve-vs-direct differential: the service adds no execution semantics
# ---------------------------------------------------------------------------


class TestServeDifferential:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_serve_matches_direct(self, name):
        direct_specs, direct_results = _direct_run(
            name, Device(mode="functional"))

        async def scenario():
            device = Device(mode="functional")
            workload = get_workload(name)
            async with SimService(device, FAST) as service:
                specs = build_sweep_specs(device, workload,
                                          workload.check_problem())
                results = await service.submit_pipeline(specs)
            return specs, results

        served_specs, served_results = asyncio.run(scenario())
        _assert_results_match(served_results, direct_results)
        assert (protocol.args_digest(served_specs)
                == protocol.args_digest(direct_specs))

    def test_concurrent_mixed_families_all_match(self):
        """Unrelated clients' requests share micro-batches without bleeding
        into each other's results."""
        names = ["softmax", "fused_elementwise"]
        baselines = {name: protocol.args_digest(
            _direct_run(name, Device(mode="functional"))[0])
            for name in names}

        async def scenario():
            async with SimService(Device(mode="functional"), FAST) as service:
                replies = await asyncio.gather(*[
                    service.submit_workload(name, None) for name in names])
            return {reply["workload"]: reply["digest"] for reply in replies}

        digests = asyncio.run(scenario())
        assert digests == baselines
        assert COUNTERS.serve_requests == len(names)
        assert COUNTERS.serve_batches == 1  # one micro-batch served both

    def test_submit_single_spec_resolves_to_its_result(self):
        device = Device(mode="functional")
        spec = _gemm_spec(device)

        async def scenario():
            async with SimService(device, FAST) as service:
                return await service.submit(spec)

        result = asyncio.run(scenario())
        direct_device = Device(mode="functional")
        direct_spec = _gemm_spec(direct_device)
        [direct] = direct_device.run_many([direct_spec])
        _assert_results_match([result], [direct])
        c_served = spec.args["c_ptr"].buffer.to_numpy()
        c_direct = direct_spec.args["c_ptr"].buffer.to_numpy()
        assert np.array_equal(c_served, c_direct)


# ---------------------------------------------------------------------------
# Coalescing: identical keyed requests share one execution
# ---------------------------------------------------------------------------


class TestCoalescing:
    def test_queued_keyed_requests_share_one_execution(self):
        device = Device(mode="functional")
        spec = _gemm_spec(device)

        async def scenario():
            async with SimService(device, FAST) as service:
                return await asyncio.gather(
                    service.submit(spec, key="same"),
                    service.submit(spec, key="same"),
                    service.submit(spec, key="same"))

        r1, r2, r3 = asyncio.run(scenario())
        assert r1 is r2 is r3  # literally one result object
        assert COUNTERS.serve_requests == 3
        assert COUNTERS.serve_coalesced_requests == 2
        assert COUNTERS.serve_batched_launches == 1

    def test_attaches_to_slot_already_in_flight(self):
        device = Device(mode="functional")
        gate = _Gate(device)
        spec = _gemm_spec(device)

        async def scenario():
            policy = ServePolicy(max_batch=1, max_delay=0.0)
            async with SimService(device, policy) as service:
                task_a = asyncio.create_task(
                    service.submit(spec, key="same"))
                await asyncio.to_thread(gate.started.wait, 30)
                assert "same" in service._inflight
                task_b = asyncio.create_task(
                    service.submit(spec, key="same"))
                await asyncio.sleep(0.01)  # let B admit and attach
                gate.release.set()
                return await asyncio.gather(task_a, task_b)

        r_a, r_b = asyncio.run(scenario())
        assert r_a is r_b
        assert COUNTERS.serve_coalesced_requests == 1
        assert COUNTERS.serve_batched_launches == 1  # B never re-dispatched

    def test_unkeyed_requests_never_coalesce(self):
        device = Device(mode="functional")

        async def scenario():
            async with SimService(device, FAST) as service:
                return await asyncio.gather(
                    service.submit(_gemm_spec(device)),
                    service.submit(_gemm_spec(device)))

        r1, r2 = asyncio.run(scenario())
        assert r1 is not r2
        assert COUNTERS.serve_coalesced_requests == 0
        assert COUNTERS.serve_batched_launches == 2
        assert COUNTERS.serve_batches == 1  # but they shared a micro-batch

    def test_workload_requests_coalesce_by_canonical_key(self):
        params = {"M": 64, "N": 64, "K": 32, "block_m": 32, "block_n": 32,
                  "block_k": 32}

        async def scenario():
            async with SimService(Device(mode="functional"), FAST) as service:
                return await asyncio.gather(*[
                    service.submit_workload("gemm", dict(params))
                    for _ in range(4)])

        replies = asyncio.run(scenario())
        assert len({reply["digest"] for reply in replies}) == 1
        assert COUNTERS.serve_coalesced_requests == 3
        # One build, one pipeline's worth of launches.
        assert COUNTERS.serve_batched_launches == len(replies[0]["launches"])


# ---------------------------------------------------------------------------
# Backpressure: shed, deadline, cancellation
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_full_queue_sheds_with_typed_busy(self):
        device = Device(mode="functional")
        gate = _Gate(device)

        async def scenario():
            policy = ServePolicy(max_batch=1, max_delay=0.0, queue_limit=1)
            async with SimService(device, policy) as service:
                task_a = asyncio.create_task(
                    service.submit(_gemm_spec(device)))
                await asyncio.to_thread(gate.started.wait, 30)
                with pytest.raises(Busy) as excinfo:
                    await service.submit(_gemm_spec(device))
                gate.release.set()
                await task_a
                # The slot freed on completion: admission works again.
                await service.submit(_gemm_spec(device))
                return excinfo.value

        busy = asyncio.run(scenario())
        assert (busy.admitted, busy.limit) == (1, 1)
        assert COUNTERS.serve_shed_requests == 1

    def test_expired_deadline_drops_before_dispatch(self):
        device = Device(mode="functional")
        gate = _Gate(device)

        async def scenario():
            policy = ServePolicy(max_batch=1, max_delay=0.0)
            async with SimService(device, policy) as service:
                task_a = asyncio.create_task(
                    service.submit(_gemm_spec(device)))
                await asyncio.to_thread(gate.started.wait, 30)
                task_b = asyncio.create_task(
                    service.submit(_gemm_spec(device), timeout=0.01))
                await asyncio.sleep(0.05)  # expire B while A holds dispatch
                gate.release.set()
                await task_a
                with pytest.raises(DeadlineExceeded):
                    await task_b

        asyncio.run(scenario())
        assert COUNTERS.serve_deadline_drops == 1
        # The dropped request never became simulator work.
        assert COUNTERS.serve_batched_launches == 1

    def test_cancelled_client_frees_its_batch_slot(self):
        device = Device(mode="functional")
        gate = _Gate(device)

        async def scenario():
            policy = ServePolicy(max_batch=1, max_delay=0.0)
            async with SimService(device, policy) as service:
                task_a = asyncio.create_task(
                    service.submit(_gemm_spec(device)))
                await asyncio.to_thread(gate.started.wait, 30)
                task_b = asyncio.create_task(
                    service.submit(_gemm_spec(device)))
                await asyncio.sleep(0.01)  # let B enqueue
                task_b.cancel()
                await asyncio.sleep(0)
                gate.release.set()
                await task_a
                with pytest.raises(asyncio.CancelledError):
                    await task_b
                # Give the batcher one pass over B's pruned slot.
                await asyncio.sleep(0.01)

        asyncio.run(scenario())
        assert COUNTERS.serve_cancelled_drops == 1
        assert COUNTERS.serve_batched_launches == 1


# ---------------------------------------------------------------------------
# Singleflight through the serve path
# ---------------------------------------------------------------------------


class TestServeSingleflight:
    def test_cold_identical_burst_compiles_once(self):
        """8 concurrent cold requests for one kernel: the admission-time
        warm compiles all land in the compiler service's singleflight, so
        exactly one pass-pipeline execution happens."""
        device = Device(mode="functional")
        specs = [_gemm_spec(device) for _ in range(8)]

        async def scenario():
            async with SimService(device, FAST) as service:
                return await asyncio.gather(*[
                    service.submit(spec) for spec in specs])

        results = asyncio.run(scenario())
        assert COUNTERS.compile_cache_misses == 1
        assert COUNTERS.serve_requests == 8
        assert len({r.cycles for r in results}) == 1
        outputs = {spec.args["c_ptr"].buffer.to_numpy().tobytes()
                   for spec in specs}
        assert len(outputs) == 1  # identical inputs -> identical bits


# ---------------------------------------------------------------------------
# Lifecycle and policy
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_submit_after_close_raises(self):
        device = Device(mode="functional")
        spec = _gemm_spec(device)

        async def scenario():
            service = SimService(device, FAST)
            await service.start()
            await service.close()
            assert service.stats()["closed"]
            with pytest.raises(ServiceClosed):
                await service.submit(spec)

        asyncio.run(scenario())

    def test_context_exit_drains_inflight_work(self):
        device = Device(mode="functional")
        spec = _gemm_spec(device)

        async def scenario():
            async with SimService(device, FAST) as service:
                task = asyncio.create_task(service.submit(spec))
                await asyncio.sleep(0)
            return await task  # close() drained the batch first

        result = asyncio.run(scenario())
        assert result.cycles > 0

    def test_policy_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "3")
        monkeypatch.setenv("REPRO_SERVE_MAX_DELAY_MS", "10")
        monkeypatch.setenv("REPRO_SERVE_QUEUE_LIMIT", "5")
        monkeypatch.setenv("REPRO_SERVE_WARM_COMPILES", "0")
        policy = ServePolicy.from_env()
        assert policy.max_batch == 3
        assert policy.max_delay == pytest.approx(0.01)
        assert policy.queue_limit == 5
        assert policy.warm_compiles is False

    def test_policy_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "many")
        monkeypatch.setenv("REPRO_SERVE_MAX_DELAY_MS", "soon")
        monkeypatch.setenv("REPRO_SERVE_QUEUE_LIMIT", "-4")
        policy = ServePolicy.from_env()
        assert policy.max_batch == ServePolicy.max_batch
        assert policy.max_delay == ServePolicy.max_delay
        assert policy.queue_limit == 1  # clamped, not poisoned
        assert policy.warm_compiles is True


# ---------------------------------------------------------------------------
# Protocol shaping
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_workload_key_is_canonical_over_param_order(self):
        assert (protocol.workload_key("gemm", {"M": 64, "N": 32})
                == protocol.workload_key("gemm", {"N": 32, "M": 64}))
        assert (protocol.workload_key("gemm", None)
                == protocol.workload_key("gemm", {}))
        assert (protocol.workload_key("gemm", {"M": 64})
                != protocol.workload_key("gemm", {"M": 128}))

    def test_line_framing_round_trips(self):
        message = {"op": "launch", "id": 7, "params": {"M": 64}}
        assert protocol.decode_line(protocol.encode_line(message)) == message
        with pytest.raises(ValueError):
            protocol.decode_line(b"[1, 2, 3]\n")

    def test_unknown_workload_fails_at_admission(self):
        with pytest.raises(KeyError, match="unknown workload"):
            protocol.workload_job("definitely-not-registered", None)

    def test_build_problem_from_params_and_default(self):
        workload = get_workload("gemm")
        problem = protocol.build_problem(
            workload, {"M": 64, "N": 64, "K": 32, "block_m": 32,
                       "block_n": 32, "block_k": 32})
        assert (problem.M, problem.N, problem.K) == (64, 64, 32)
        assert protocol.build_problem(workload, None) is not None

    def test_digest_tracks_buffer_contents(self):
        device = Device(mode="functional")
        spec_a = _gemm_spec(device, seed=0)
        spec_b = _gemm_spec(device, seed=1)
        assert (protocol.args_digest([spec_a])
                != protocol.args_digest([spec_b]))
        assert (protocol.args_digest([spec_a])
                == protocol.args_digest([_gemm_spec(device, seed=0)]))


# ---------------------------------------------------------------------------
# The TCP front end and the CLI
# ---------------------------------------------------------------------------


class TestTCPEndpoint:
    def test_round_trip(self):
        async def scenario():
            out = {}
            async with SimServer(Device(mode="functional"), FAST) as server:
                client = await AsyncClient.connect(server.host, server.port,
                                                   wait=5.0)
                async with client:
                    out["ping"] = await client.ping()
                    out["workloads"] = await client.list_workloads()
                    replies = await asyncio.gather(
                        client.launch("softmax"), client.launch("softmax"))
                    out["digests"] = {r["digest"] for r in replies}
                    out["launches"] = replies[0]["launches"]
                    out["counters"] = await client.counters()
                    out["stats"] = await client.stats()
                    try:
                        await client.request("frobnicate")
                    except RemoteError as exc:
                        out["unknown_op"] = exc.error
                    try:
                        await client.launch("not-a-workload")
                    except RemoteError as exc:
                        out["bad_launch"] = exc.error
            return out

        out = asyncio.run(scenario())
        assert out["ping"] is True
        assert "softmax" in out["workloads"]
        assert len(out["digests"]) == 1  # identical requests, identical bits
        assert out["launches"][0]["cycles"] > 0
        assert out["counters"]["serve_requests"] >= 2
        assert out["stats"]["closed"] is False
        assert out["unknown_op"] == "unknown-op"
        assert out["bad_launch"] == "bad-request"

    def test_cli_smoke_exits_zero(self, capsys):
        rc = serve_main(["smoke", "--pool", "0", "--repeat", "2", "softmax"])
        captured = capsys.readouterr()
        assert rc == 0, captured.err
        assert "softmax x2" in captured.out


# ---------------------------------------------------------------------------
# Supervision under load: the serve layer rides the pool's fault recovery
# ---------------------------------------------------------------------------


@needs_fork
class TestServeSupervision:
    def test_mid_load_worker_kill_recovers_bit_identical(self):
        params = {"M": 128, "N": 128, "K": 64, "block_m": 64, "block_n": 64,
                  "block_k": 32}
        workload = get_workload("gemm")
        serial_device = Device(mode="functional", workers=1)
        serial_specs = build_sweep_specs(serial_device, workload,
                                         workload.problem_cls(**params))
        serial_device.run_many(serial_specs)
        serial_digest = protocol.args_digest(serial_specs)

        async def scenario():
            device = Device(mode="functional", pool=2, shard_retries=2)
            async with SimService(device, FAST) as service:
                return await asyncio.gather(*[
                    service.submit_workload("gemm", dict(params),
                                            coalesce=False)
                    for _ in range(3)])

        with faults.inject_faults("kill:worker=1,cta=0"):
            replies = asyncio.run(scenario())

        assert COUNTERS.faults_injected == 1
        assert COUNTERS.shard_retries == 1
        assert COUNTERS.pool_worker_respawns == 1
        for reply in replies:  # every client, including the killed shard's
            assert reply["digest"] == serial_digest
