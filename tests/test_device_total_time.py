"""Unit tests for ``Device._total_time`` -- the perf-mode extrapolation.

The device simulates a *sample* of CTAs and extrapolates the launch's total
runtime: wave quantization (the critical SM executes ``ceil(launched /
active_sms)`` CTAs back to back), per-CTA and per-kernel launch overheads,
and the persistent-kernel critical path.  These are pure arithmetic
contracts, so they are pinned down exactly.
"""

from __future__ import annotations

import math

import pytest

from repro.gpusim.config import DEFAULT_CONFIG
from repro.gpusim.device import Device


CFG = DEFAULT_CONFIG
LAUNCH_OVERHEAD = CFG.kernel_launch_overhead_us * 1e-6 * CFG.cycles_per_second
CTA_OVERHEAD = CFG.cta_launch_overhead_cycles


@pytest.fixture
def device() -> Device:
    return Device(mode="performance")


def total(device, per_cta, launched, active=None, persistent=False,
          functional=False):
    active = min(CFG.num_sms, launched) if active is None else active
    return device._total_time(per_cta, launched, active, persistent, functional)


class TestNonPersistentExtrapolation:
    def test_single_cta_grid(self, device):
        # One CTA on one SM: exactly one launch overhead + one CTA.
        assert total(device, [1000.0], launched=1) == pytest.approx(
            LAUNCH_OVERHEAD + 1000.0 + CTA_OVERHEAD)

    def test_grid_smaller_than_sm_count(self, device):
        # Fewer CTAs than SMs: every CTA gets its own SM, a single wave.
        per_cta = [1000.0, 2000.0]
        launched = CFG.num_sms // 2
        expected = LAUNCH_OVERHEAD + (1500.0 + CTA_OVERHEAD)
        assert total(device, per_cta, launched) == pytest.approx(expected)

    def test_exact_multiple_of_sms_quantizes_to_full_waves(self, device):
        # launched == 3 * num_sms: the critical SM runs exactly 3 CTAs.
        per_cta = [1000.0]
        launched = 3 * CFG.num_sms
        expected = LAUNCH_OVERHEAD + 3 * (1000.0 + CTA_OVERHEAD)
        assert total(device, per_cta, launched) == pytest.approx(expected)

    def test_partial_last_wave_rounds_up(self, device):
        # One CTA more than a full wave costs a whole extra wave on the
        # critical SM -- the wave-quantization cliff of Fig. 8.
        per_cta = [1000.0]
        launched = CFG.num_sms + 1
        expected = LAUNCH_OVERHEAD + 2 * (1000.0 + CTA_OVERHEAD)
        assert total(device, per_cta, launched) == pytest.approx(expected)
        # ... and is strictly more expensive than the full wave alone.
        assert total(device, per_cta, launched) > total(device, per_cta, CFG.num_sms)

    def test_wave_count_uses_ceiling(self, device):
        per_cta = [500.0]
        for launched in (1, CFG.num_sms - 1, CFG.num_sms, CFG.num_sms + 1,
                         5 * CFG.num_sms - 3):
            active = min(CFG.num_sms, launched)
            waves = math.ceil(launched / active)
            expected = LAUNCH_OVERHEAD + waves * (500.0 + CTA_OVERHEAD)
            assert total(device, per_cta, launched) == pytest.approx(expected)

    def test_sample_mean_is_used(self, device):
        # The simulated CTAs are a sample; the extrapolation uses their mean.
        per_cta = [100.0, 200.0, 600.0]
        launched = 2 * CFG.num_sms
        expected = LAUNCH_OVERHEAD + 2 * (300.0 + CTA_OVERHEAD)
        assert total(device, per_cta, launched) == pytest.approx(expected)


class TestEdgeCases:
    def test_empty_launch_costs_only_launch_overhead(self, device):
        assert total(device, [], launched=0, active=0) == pytest.approx(LAUNCH_OVERHEAD)

    def test_zero_active_sms_guard(self, device):
        # max(1, active_sms) prevents a division by zero even for degenerate
        # active counts.
        assert total(device, [100.0], launched=1, active=0) == pytest.approx(
            LAUNCH_OVERHEAD + 100.0 + CTA_OVERHEAD)


class TestPersistentExtrapolation:
    def test_critical_path_is_max_resident_cta(self, device):
        # One resident CTA per SM; the slowest one is the critical path and
        # the CTA launch overhead is paid once.
        per_cta = [5000.0, 7000.0, 6000.0]
        expected = LAUNCH_OVERHEAD + CTA_OVERHEAD + 7000.0
        assert total(device, per_cta, launched=CFG.num_sms,
                     persistent=True) == pytest.approx(expected)

    def test_single_cta_persistent_grid(self, device):
        assert total(device, [4000.0], launched=1, persistent=True) == pytest.approx(
            LAUNCH_OVERHEAD + CTA_OVERHEAD + 4000.0)


class TestFunctionalTotalTime:
    def test_functional_launch_matches_formula(self):
        # Functional mode simulates *every* CTA; the same wave-quantized
        # formula applies over the full population.
        device = Device(mode="functional")
        per_cta = [100.0 * (i + 1) for i in range(4)]
        launched = 4
        mean = sum(per_cta) / len(per_cta)
        expected = LAUNCH_OVERHEAD + mean + CTA_OVERHEAD
        assert total(device, per_cta, launched, functional=True) == pytest.approx(expected)
