"""Shared fixtures: devices, small problems, compiled-kernel helpers."""

from __future__ import annotations

import pytest

from repro.core.options import CompileOptions, NAIVE_OPTIONS, TRITON_BASELINE_OPTIONS
from repro.gpusim import pool as pool_mod
from repro.gpusim.device import Device, clear_compile_cache
from repro.kernels.attention import AttentionProblem
from repro.kernels.gemm import GemmProblem
from repro.perf.counters import COUNTERS


@pytest.fixture(autouse=True)
def _isolate_process_wide_sim_state():
    """Reset the process-wide counter block and compile cache per test.

    Both are intentionally process-wide in production (cross-device reuse is
    what makes figure sweeps cheap), but tests that assert on counter values
    or cache hit/miss behaviour must not see state leaked by whichever tests
    happened to run before them.  Process-global worker pools are shut down
    on teardown for the same reason (and so tests asserting on
    ``mp.active_children()`` never see another test's pool workers).
    """
    COUNTERS.reset()
    clear_compile_cache()
    yield
    pool_mod.shutdown_pools()


@pytest.fixture
def functional_device() -> Device:
    return Device(mode="functional")


@pytest.fixture
def perf_device() -> Device:
    return Device(mode="performance", max_ctas_per_sm_simulated=2)


@pytest.fixture
def small_gemm() -> GemmProblem:
    return GemmProblem(M=128, N=128, K=128, block_m=64, block_n=64, block_k=32)


@pytest.fixture
def tiny_gemm() -> GemmProblem:
    return GemmProblem(M=64, N=64, K=64, block_m=32, block_n=32, block_k=32)


@pytest.fixture
def small_attention() -> AttentionProblem:
    return AttentionProblem(batch=1, heads=2, seq_len=128, head_dim=64,
                            block_m=64, block_n=64, causal=False)


@pytest.fixture
def ws_options() -> CompileOptions:
    return CompileOptions(enable_warp_specialization=True, aref_depth=2,
                          mma_pipeline_depth=2)


@pytest.fixture
def triton_options() -> CompileOptions:
    return TRITON_BASELINE_OPTIONS


@pytest.fixture
def naive_options() -> CompileOptions:
    return NAIVE_OPTIONS
