"""Frontend tests: expressions, loops, conditionals, builtins, specialization."""

import pytest

from repro.frontend import FrontendError, TypeMismatchError, UnsupportedSyntaxError, kernel, tl
from repro.ir import print_op
from repro.ir.dialects import scf
from repro.ir.types import PointerType, TensorType, f32, i32


def build(kern, arg_types, constexprs=None, num_warps=8):
    spec = kern.specialize(arg_types, constexprs or {}, num_warps=num_warps)
    return kern.build_module(spec)


# -- simple kernels used across tests -------------------------------------------------


@kernel
def axpy(x_ptr, y_ptr, alpha, N: tl.constexpr):
    offs = tl.arange(0, N)
    x = tl.load(x_ptr + offs)
    y = tl.load(y_ptr + offs)
    tl.store(y_ptr + offs, x * alpha + y)


@kernel
def loop_accumulate(x_ptr, n, BLOCK: tl.constexpr):
    acc = tl.zeros((BLOCK,), dtype=tl.float32)
    base = 0
    for i in tl.range(0, n):
        offs = base + tl.arange(0, BLOCK)
        acc = acc + tl.load(x_ptr + offs)
        base += BLOCK
    tl.store(x_ptr + tl.arange(0, BLOCK), acc)


@kernel
def static_features(x_ptr, FLAG: tl.constexpr, BLOCK: tl.constexpr):
    offs = tl.arange(0, BLOCK)
    v = tl.load(x_ptr + offs)
    if FLAG:
        v = tl.exp(v)
    else:
        v = v * 2.0
    for i in tl.static_range(0, 2):
        v = v + 1.0
    tl.store(x_ptr + offs, v)


class TestBasicExpressions:
    def test_axpy_structure(self):
        module = build(axpy, {"x_ptr": PointerType(f32), "y_ptr": PointerType(f32),
                              "alpha": f32}, {"N": 64})
        text = print_op(module)
        assert "tt.make_range" in text
        assert "tt.load" in text
        assert "arith.mulf" in text
        assert "tt.store" in text

    def test_constexpr_shapes_are_burned_in(self):
        module = build(axpy, {"x_ptr": PointerType(f32), "y_ptr": PointerType(f32),
                              "alpha": f32}, {"N": 128})
        assert "tensor<128xf32>" in print_op(module)

    def test_module_records_num_warps(self):
        module = build(axpy, {"x_ptr": PointerType(f32), "y_ptr": PointerType(f32),
                              "alpha": f32}, {"N": 64}, num_warps=4)
        assert module.attributes["num-warps"] == 4

    def test_subscript_none_becomes_expand_dims(self):
        @kernel
        def outer_product(c_ptr, BLOCK: tl.constexpr):
            rows = tl.arange(0, BLOCK)
            cols = tl.arange(0, BLOCK)
            prod = rows[:, None] * cols[None, :]
            tl.store(c_ptr + prod, prod)

        module = build(outer_product, {"c_ptr": PointerType(f32)}, {"BLOCK": 16})
        assert print_op(module).count("tt.expand_dims") == 2


class TestLoops:
    def test_loop_carried_values_become_iter_args(self):
        module = build(loop_accumulate, {"x_ptr": PointerType(f32), "n": i32}, {"BLOCK": 32})
        fn = module.get_function("loop_accumulate")
        loop = next(op for op in fn.walk() if isinstance(op, scf.ForOp))
        # acc (tensor) and base (scalar) are both loop-carried.
        carried_types = [a.type for a in loop.iter_args]
        assert TensorType((32,), f32) in carried_types
        assert i32 in carried_types

    def test_loop_results_rebound_after_loop(self):
        module = build(loop_accumulate, {"x_ptr": PointerType(f32), "n": i32}, {"BLOCK": 32})
        fn = module.get_function("loop_accumulate")
        store = next(op for op in fn.walk() if op.name == "tt.store")
        loop = next(op for op in fn.walk() if isinstance(op, scf.ForOp))
        # The stored value is the loop's accumulator result (possibly cast).
        value = store.value
        if value.defining_op is not None and value.defining_op.name == "arith.cast":
            value = value.defining_op.operands[0]
        assert value in loop.results

    def test_static_range_unrolls(self):
        module = build(static_features, {"x_ptr": PointerType(f32)},
                       {"FLAG": False, "BLOCK": 8})
        fn = module.get_function("static_features")
        assert not any(isinstance(op, scf.ForOp) for op in fn.walk())
        # the +1.0 body appears twice (unrolled)
        adds = [op for op in fn.walk() if op.name == "arith.addf"]
        assert len(adds) == 2

    def test_python_range_also_builds_scf_for(self):
        @kernel
        def plain_range(x_ptr, n, BLOCK: tl.constexpr):
            acc = tl.zeros((BLOCK,), dtype=tl.float32)
            for i in range(0, n):
                acc = acc + 1.0
            tl.store(x_ptr + tl.arange(0, BLOCK), acc)

        module = build(plain_range, {"x_ptr": PointerType(f32), "n": i32}, {"BLOCK": 8})
        assert any(isinstance(op, scf.ForOp) for op in module.get_function("plain_range").walk())

    def test_carried_type_change_is_an_error(self):
        @kernel
        def bad(x_ptr, n, BLOCK: tl.constexpr):
            acc = tl.zeros((BLOCK,), dtype=tl.float32)
            for i in tl.range(0, n):
                acc = tl.zeros((BLOCK,), dtype=tl.float16)
            tl.store(x_ptr + tl.arange(0, BLOCK), acc)

        with pytest.raises(TypeMismatchError, match="changed type"):
            build(bad, {"x_ptr": PointerType(f32), "n": i32}, {"BLOCK": 8})


class TestConditionals:
    def test_static_if_selects_single_branch(self):
        module = build(static_features, {"x_ptr": PointerType(f32)},
                       {"FLAG": True, "BLOCK": 8})
        text = print_op(module)
        assert "math.exp" in text and "arith.mulf" not in text

    def test_dynamic_if_builds_scf_if(self):
        @kernel
        def dyn(x_ptr, n, BLOCK: tl.constexpr):
            v = tl.load(x_ptr + tl.arange(0, BLOCK))
            scale = 1.0
            if n > 4:
                scale = 2.0
            tl.store(x_ptr + tl.arange(0, BLOCK), v * scale)

        module = build(dyn, {"x_ptr": PointerType(f32), "n": i32}, {"BLOCK": 8})
        assert any(op.name == "scf.if" for op in module.get_function("dyn").walk())

    def test_dynamic_if_requires_predefined_names(self):
        @kernel
        def bad(x_ptr, n, BLOCK: tl.constexpr):
            if n > 4:
                fresh = 2.0
            tl.store(x_ptr + tl.arange(0, BLOCK), fresh)

        with pytest.raises(FrontendError, match="defined before"):
            build(bad, {"x_ptr": PointerType(f32), "n": i32}, {"BLOCK": 8})


class TestErrors:
    def test_while_loops_rejected(self):
        @kernel
        def bad(x_ptr, n):
            while n > 0:
                n = n - 1

        with pytest.raises(UnsupportedSyntaxError):
            build(bad, {"x_ptr": PointerType(f32), "n": i32})

    def test_undefined_name(self):
        @kernel
        def bad(x_ptr):
            tl.store(x_ptr + tl.arange(0, 4), undefined_name)  # noqa: F821

        with pytest.raises(FrontendError, match="not defined"):
            build(bad, {"x_ptr": PointerType(f32)})

    def test_dynamic_tile_shape_rejected(self):
        @kernel
        def bad(x_ptr, n):
            acc = tl.zeros((n,), dtype=tl.float32)
            tl.store(x_ptr + tl.arange(0, 4), acc)

        with pytest.raises(FrontendError, match="compile-time"):
            build(bad, {"x_ptr": PointerType(f32), "n": i32})

    def test_kernel_call_outside_device_raises(self):
        with pytest.raises(RuntimeError, match="cannot be called directly"):
            axpy(1, 2, 3)

    def test_builtin_call_outside_kernel_raises(self):
        with pytest.raises(RuntimeError, match="only be called inside"):
            tl.dot(None, None)

    def test_cdiv_works_on_host(self):
        assert tl.cdiv(10, 3) == 4

    def test_line_numbers_in_errors(self):
        @kernel
        def bad(x_ptr):
            y = x_ptr @ x_ptr  # matmul of pointers is nonsense
            tl.store(x_ptr + tl.arange(0, 4), y)

        with pytest.raises(FrontendError) as err:
            build(bad, {"x_ptr": PointerType(f32)})
        assert "bad" in str(err.value)


class TestSpecialization:
    def test_missing_constexpr_value(self):
        with pytest.raises(FrontendError, match="constexpr parameter"):
            axpy.specialize({"x_ptr": PointerType(f32), "y_ptr": PointerType(f32),
                             "alpha": f32})

    def test_unknown_constexpr_name(self):
        with pytest.raises(FrontendError, match="not constexpr"):
            axpy.specialize({"x_ptr": PointerType(f32), "y_ptr": PointerType(f32),
                             "alpha": f32}, {"N": 8, "BOGUS": 1})

    def test_missing_runtime_type(self):
        with pytest.raises(FrontendError, match="missing types"):
            axpy.specialize({"x_ptr": PointerType(f32)}, {"N": 8})

    def test_positional_type_sequence(self):
        spec = axpy.specialize([PointerType(f32), PointerType(f32), f32], {"N": 8})
        assert dict(spec.arg_types)["alpha"] == f32

    def test_default_constexpr_values_used(self):
        @kernel
        def with_default(x_ptr, BLOCK: tl.constexpr = 16):
            tl.store(x_ptr + tl.arange(0, BLOCK), tl.zeros((BLOCK,), dtype=tl.float32))

        spec = with_default.specialize({"x_ptr": PointerType(f32)})
        assert dict(spec.constexprs)["BLOCK"] == 16

    def test_runtime_and_constexpr_param_lists(self):
        assert axpy.runtime_param_names == ["x_ptr", "y_ptr", "alpha"]
        assert axpy.constexpr_param_names == ["N"]

    def test_specializations_are_independent_modules(self):
        types = {"x_ptr": PointerType(f32), "y_ptr": PointerType(f32), "alpha": f32}
        m1 = build(axpy, types, {"N": 16})
        m2 = build(axpy, types, {"N": 32})
        assert "tensor<16xf32>" in print_op(m1)
        assert "tensor<32xf32>" in print_op(m2)
