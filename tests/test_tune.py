"""Autotuner tests: spaces, ranking, persistence, invalidation.

Pins the tuner contracts PR 5 introduced:

* :class:`ConfigSpace` enumeration is deterministic, deduplicated and keeps
  infeasible cells (with reasons) in grid positions;
* analytic-model ranking order is deterministic (same inputs, same order);
* persisted best configs round-trip across *processes* and a warm process
  re-measures nothing;
* editing a kernel (here: a module-level constant its body reads) moves the
  tuning key, so stale entries can never serve the mutated kernel.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.core.options import CompileOptions
from repro.frontend import kernel, tl
from repro.gpusim.device import Device, LaunchSpec
from repro.kernels.gemm import GemmProblem
from repro.perf.metrics import Infeasible
from repro.tune import (
    Autotuner,
    Candidate,
    ConfigSpace,
    TunedRecord,
    TuneStore,
    predict_tflops,
    static_infeasibility,
    tuning_key,
)
from repro import workloads

SRC = str(Path(__file__).resolve().parent.parent / "src")

# ---------------------------------------------------------------------------
# A tiny custom workload whose kernel reads a module-level constant, so tests
# can move its source fingerprint by mutation.
# ---------------------------------------------------------------------------

SCALE = 2.0


@kernel
def scale_rows_kernel(x_ptr, out_ptr, n, BLOCK: tl.constexpr):
    pid = tl.program_id(axis=0)
    offs = pid * BLOCK + tl.arange(0, BLOCK)
    mask = offs < n
    x = tl.load(x_ptr + offs, mask=mask, other=0.0)
    tl.store(out_ptr + offs, x * SCALE, mask=mask)


@dataclass
class ScaleProblem:
    n: int = 512
    block: int = 64

    @property
    def flops(self) -> float:
        return float(self.n)

    @property
    def bytes_moved(self) -> float:
        return float(self.n * 8)

    @property
    def grid(self) -> int:
        return (self.n + self.block - 1) // self.block


def _scale_specs(device: Device, problem: ScaleProblem, options: CompileOptions):
    x = device.buffer((problem.n,), "f32", "x")
    out = device.buffer((problem.n,), "f32", "out")
    from repro.gpusim.memory import Pointer

    return [LaunchSpec(scale_rows_kernel, problem.grid,
                       {"x_ptr": Pointer(x), "out_ptr": Pointer(out),
                        "n": problem.n},
                       {"BLOCK": problem.block}, options, problem.flops)]


def _scale_check(device: Device, problem: ScaleProblem, options):
    x = np.linspace(-1.0, 1.0, problem.n, dtype=np.float32)
    out = np.zeros(problem.n, dtype=np.float32)
    opts = options or _scale_default_options()
    result = device.run(scale_rows_kernel, problem.grid,
                        {"x_ptr": device.pointer(x, "f32"),
                         "out_ptr": device.pointer(out, "f32"), "n": problem.n},
                        {"BLOCK": problem.block}, opts, problem.flops)
    np.testing.assert_allclose(out, x * SCALE, rtol=1e-5)
    return result


def _scale_default_options() -> CompileOptions:
    return CompileOptions(enable_warp_specialization=False,
                          software_pipelining=False)


@pytest.fixture
def scale_workload():
    name = "_tune_test_scale"
    workloads.unregister(name)
    wl = workloads.register(workloads.Workload(
        name=name,
        description="test-only elementwise scale workload",
        problem_cls=ScaleProblem,
        make_specs=_scale_specs,
        check=_scale_check,
        bytes_moved=lambda p: p.bytes_moved,
        default_options=_scale_default_options,
        reduced_sweep=lambda: [ScaleProblem()],
        check_problem=lambda: ScaleProblem(n=128),
    ))
    yield wl
    workloads.unregister(name)


def _small_space() -> ConfigSpace:
    return ConfigSpace(base=_scale_default_options(),
                       software_pipelining=[False, True],
                       num_stages=[2, 3])


# ---------------------------------------------------------------------------
# ConfigSpace
# ---------------------------------------------------------------------------


class TestConfigSpace:
    def test_enumeration_is_deterministic_and_ordered(self):
        space = ConfigSpace(aref_depth=[1, 2], mma_pipeline_depth=[1, 2])
        cells = space.cells()
        assert len(cells) == len(space) == 4
        assert [dict(c.assignment) for c in cells] == [
            {"aref_depth": 1, "mma_pipeline_depth": 1},
            {"aref_depth": 1, "mma_pipeline_depth": 2},
            {"aref_depth": 2, "mma_pipeline_depth": 1},
            {"aref_depth": 2, "mma_pipeline_depth": 2},
        ]
        assert [c.assignment for c in cells] == [c.assignment
                                                 for c in space.cells()]

    def test_infeasible_cells_keep_position_and_reason(self):
        space = ConfigSpace(aref_depth=[1, 2], mma_pipeline_depth=[1, 2])
        cells = space.cells()
        infeasible = [c for c in cells if not c.feasible]
        assert len(infeasible) == 1  # D=1, P=2
        assert dict(infeasible[0].assignment) == {"aref_depth": 1,
                                                  "mma_pipeline_depth": 2}
        assert "infeasible" in infeasible[0].reason
        assert len(space.candidates()) == 3

    def test_candidates_dedup_by_content(self):
        space = ConfigSpace(aref_depth=[2, 2, 3])
        assert len(space.cells()) == 3
        assert len(space.candidates()) == 2

    def test_problem_axes_become_overrides(self):
        space = ConfigSpace(problem_axes={"block_n": [128, 256]})
        candidates = space.candidates()
        assert [c.problem_overrides for c in candidates] == [
            (("block_n", 128),), (("block_n", 256),)]
        problem = GemmProblem(M=128, N=128, K=128)
        assert candidates[0].apply(problem).block_n == 128
        assert candidates[1].apply(problem).block_n == 256
        assert problem.block_n == 256  # original untouched

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown CompileOptions axes"):
            ConfigSpace(arf_depth=[1, 2])

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ConfigSpace(aref_depth=[])


# ---------------------------------------------------------------------------
# Cost model + ranking determinism
# ---------------------------------------------------------------------------


class TestCostModel:
    def test_static_pruning_matches_resource_rationale(self):
        """A 128x256 accumulator needs cooperative warp groups (docs of
        repro.core.resources); the static model agrees without compiling."""
        problem = GemmProblem(M=8192, N=8192, K=2048, block_m=128,
                              block_n=256, block_k=64)
        one_group = CompileOptions(num_consumer_groups=1)
        two_groups = CompileOptions(num_consumer_groups=2)
        assert static_infeasibility(problem, one_group) is not None
        assert static_infeasibility(problem, two_groups) is None

    def test_persistent_requires_1d_grid_statically(self):
        """Persistent candidates for multi-dim-grid problems are pruned
        before any compile (repro.core.persistent rejects them anyway)."""
        from repro.kernels.attention import AttentionProblem

        problem = AttentionProblem(batch=4, heads=32, seq_len=2048,
                                   head_dim=128)
        persistent = CompileOptions(num_consumer_groups=2, persistent=True)
        reason = static_infeasibility(problem, persistent)
        assert reason is not None and "1-D launch grid" in reason
        assert static_infeasibility(
            problem, CompileOptions(num_consumer_groups=2)) is None
        # 1-D-grid problems keep persistent candidates.
        gemm = GemmProblem(M=8192, N=8192, K=2048, block_m=128, block_n=256,
                           block_k=64)
        assert static_infeasibility(gemm, persistent) is None

    def test_predict_is_deterministic(self):
        problem = GemmProblem(M=8192, N=8192, K=2048)
        candidate = Candidate(CompileOptions(aref_depth=3, num_consumer_groups=2))
        a = predict_tflops(candidate, problem, problem.flops, problem.bytes_moved)
        b = predict_tflops(candidate, problem, problem.flops, problem.bytes_moved)
        assert a == b > 0

    def test_ranking_order_is_deterministic(self, scale_workload):
        orders = []
        for _ in range(2):
            tuner = Autotuner(top_k=4, use_store=False)
            result = tuner.tune(scale_workload.name, space=_small_space())
            orders.append([c.key() for c, _ in result.measured])
        assert orders[0] == orders[1]
        assert len(orders[0]) >= 2


# ---------------------------------------------------------------------------
# The tuner
# ---------------------------------------------------------------------------


class TestAutotuner:
    def test_never_loses_to_the_default(self):
        result = Autotuner(top_k=4, use_store=False).tune("gemm")
        assert result.best_tflops >= result.default_tflops > 0
        assert not result.from_store
        assert result.measurements == len(result.measured) > 0

    def test_default_candidate_always_measured(self, scale_workload):
        # A space that does not contain the default configuration at all.
        space = ConfigSpace(base=_scale_default_options(),
                            software_pipelining=[True], num_stages=[3])
        result = Autotuner(use_store=False).tune(scale_workload.name,
                                                 space=space)
        default_key = Candidate(scale_workload.default_options()).key()
        assert any(c.key() == default_key for c, _ in result.measured)

    def test_infeasible_measurements_never_win(self, scale_workload,
                                               monkeypatch):
        def fake_measure(self, workload, problem, finalists):
            values = [Infeasible("boom")] * len(finalists)
            values[-1] = 1.25  # only the last finalist is feasible
            return list(zip(finalists, values))

        monkeypatch.setattr(Autotuner, "_measure", fake_measure)
        result = Autotuner(use_store=False).tune(scale_workload.name,
                                                 space=_small_space())
        assert result.best_tflops == 1.25
        assert result.best.key() == result.measured[-1][0].key()

    def test_all_infeasible_raises(self, scale_workload, monkeypatch):
        monkeypatch.setattr(
            Autotuner, "_measure",
            lambda self, workload, problem, finalists: [
                (c, Infeasible("boom")) for c in finalists])
        with pytest.raises(RuntimeError, match="no feasible candidate"):
            Autotuner(use_store=False).tune(scale_workload.name,
                                            space=_small_space())

    def test_kernel_configs_attachment_used(self, scale_workload):
        space = _small_space()
        assert scale_rows_kernel.configs is None
        scale_rows_kernel.configs = space
        try:
            tuner = Autotuner(use_store=False)
            assert tuner._attached_space(scale_workload, ScaleProblem()) is space
            result = tuner.tune(scale_workload.name)
            assert result.measurements <= len(space.candidates()) + 1
        finally:
            scale_rows_kernel.configs = None

    def test_kernel_decorator_configs_kwarg(self):
        space = ConfigSpace(aref_depth=[2, 3])

        @kernel(configs=space)
        def k(x_ptr, BLOCK: tl.constexpr):
            pid = tl.program_id(axis=0)
            tl.store(x_ptr + pid, 1.0)

        assert k.configs is space
        assert k.name == "k"
        assert callable(k.tune)


# ---------------------------------------------------------------------------
# The persisted store
# ---------------------------------------------------------------------------


class TestTuneStore:
    def _record(self, key: str) -> TunedRecord:
        return TunedRecord(
            key=key, workload="gemm",
            options=CompileOptions(aref_depth=3, persistent=True),
            problem_overrides=(("block_n", 128),),
            measured_tflops=123.4, default_tflops=100.0,
            predicted_tflops=130.0, measurements=5,
        )

    def test_round_trip(self, tmp_path):
        store = TuneStore(tmp_path)
        record = self._record("k1")
        assert store.store(record)
        loaded = store.load("k1")
        assert loaded == record
        assert loaded.options.persistent is True
        assert loaded.problem_overrides == (("block_n", 128),)

    def test_corrupt_entry_is_discarded_as_miss(self, tmp_path):
        store = TuneStore(tmp_path)
        store.store(self._record("k1"))
        store.path_for("k1").write_text("{not json", encoding="utf-8")
        assert store.load("k1") is None
        assert not store.path_for("k1").exists()

    def test_version_mismatch_is_a_miss(self, tmp_path):
        store = TuneStore(tmp_path)
        store.store(self._record("k1"))
        payload = json.loads(store.path_for("k1").read_text())
        payload["version"] = 999
        store.path_for("k1").write_text(json.dumps(payload))
        assert store.load("k1") is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        store = TuneStore(tmp_path)
        record = self._record("k1")
        store.store(record)
        os.rename(store.path_for("k1"), store.path_for("k2"))
        assert store.load("k2") is None

    def test_tuning_key_dimensions(self):
        from repro.gpusim.config import DEFAULT_CONFIG

        base = tuning_key(["f1"], GemmProblem, DEFAULT_CONFIG)
        assert base == tuning_key(["f1"], GemmProblem, DEFAULT_CONFIG)
        assert base != tuning_key(["f2"], GemmProblem, DEFAULT_CONFIG)
        assert base != tuning_key(["f1"], ScaleProblem, DEFAULT_CONFIG)
        assert base != tuning_key(["f1"], GemmProblem,
                                  DEFAULT_CONFIG.with_overrides(num_sms=8))
        assert base != tuning_key(["f1"], GemmProblem, DEFAULT_CONFIG,
                                  qualifier="other")


# ---------------------------------------------------------------------------
# Persistence round-trip across processes + warm zero-measurement reuse
# ---------------------------------------------------------------------------


class TestCrossProcessPersistence:
    def _run_cli(self, tmp_path, tune_dir, expect):
        json_path = tmp_path / f"tune-{expect}.json"
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
        env["REPRO_TUNE_DIR"] = str(tune_dir)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.workloads", "tune", "gemm",
             "--sweep", "smoke", "--expect-store", expect,
             "--json", str(json_path)],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        return json.loads(json_path.read_text())

    def test_warm_process_reuses_with_zero_measurements(self, tmp_path):
        tune_dir = tmp_path / "tuned"
        cold = self._run_cli(tmp_path, tune_dir, "miss")
        warm = self._run_cli(tmp_path, tune_dir, "hit")

        assert cold["tune"][0]["from_store"] is False
        assert cold["tune"][0]["measurements"] > 0
        assert cold["counters"]["tune_measurements"] > 0

        assert warm["tune"][0]["from_store"] is True
        assert warm["tune"][0]["measurements"] == 0
        assert warm["counters"]["tune_measurements"] == 0
        assert warm["counters"]["compile_passes_run"] == 0

        assert warm["tune"][0]["tuned_tflops"] == cold["tune"][0]["tuned_tflops"]
        assert warm["tune"][0]["config"] == cold["tune"][0]["config"]
        # The tuned config must beat (or tie) the hand-written default.
        assert warm["tune"][0]["tuned_tflops"] >= warm["tune"][0]["default_tflops"]


# ---------------------------------------------------------------------------
# Stale-entry invalidation on kernel fingerprint change
# ---------------------------------------------------------------------------


class TestStaleInvalidation:
    def test_kernel_edit_moves_the_key(self, scale_workload, tmp_path):
        store = TuneStore(tmp_path)
        tuner = Autotuner(store=store, top_k=2)
        cold = tuner.tune(scale_workload.name, space=_small_space())
        assert not cold.from_store

        warm = tuner.tune(scale_workload.name, space=_small_space())
        assert warm.from_store
        assert warm.measurements == 0
        assert warm.key == cold.key

        global SCALE
        original = SCALE
        SCALE = 3.5  # the kernel body reads this: its fingerprint must move
        try:
            stale = tuner.tune(scale_workload.name, space=_small_space())
            assert stale.key != cold.key
            assert not stale.from_store  # old entry can never serve the edit
            assert stale.measurements > 0
        finally:
            SCALE = original

        # Restoring the constant restores the original key -> warm again.
        restored = tuner.tune(scale_workload.name, space=_small_space())
        assert restored.from_store
        assert restored.key == cold.key
