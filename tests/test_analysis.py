"""The static-analysis subsystem (:mod:`repro.analysis`).

Four layers under test:

* the analyzers themselves -- channel happens-before checking, bounds/mask
  intervals, resource budgets -- pinned by golden rendered diagnostics, one
  per violation class, produced by *mutating* a correctly-compiled kernel;
* the mutation differential suite: every seeded protocol mutation must be
  caught **statically** (``analyze_channels``) or **dynamically**
  (``Device(sanitize=True)`` raising :class:`SimulationError`), with zero
  silent escapes -- a mutation that neither layer flags fails the suite;
* the wiring: the opt-in ``run_analysis`` pipeline stage, the sanitizer's
  engine-selection rules, the ``analysis_*`` counters and the
  content-addressed artifact cache (memory tier in-process, disk tier proven
  from subprocesses via ``python -m repro.analysis lint --expect-analysis``);
* the lint gate: every registered workload's kernels lint clean (zero
  error-severity diagnostics).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.analysis import (
    AnalysisResult,
    CtaSanitizer,
    Diagnostic,
    SanitizerError,
    Severity,
    analyze_bounds,
    analyze_channels,
    analyze_resources,
    get_analysis,
)
from repro.analysis.cli import lint_workloads, main as lint_main
from repro.analysis.passes import AnalysisPass
from repro.core.aref import ArefSlot
from repro.core.compiler import compile_kernel
from repro.core.options import CompileError, CompileOptions
from repro.core.service import CompilerService
from repro.frontend import kernel, tl
from repro.gpusim.config import DEFAULT_CONFIG
from repro.gpusim.device import Device
from repro.gpusim.engine import SimulationError
from repro.gpusim.executors import SerialExecutor, validate_engine_settings
from repro.ir.dialects import arith, tawa
from repro.ir.types import PointerType, TensorDescType, f16, i32
from repro.kernels.gemm import GemmProblem, make_gemm_inputs, matmul_kernel
from repro.perf.counters import COUNTERS
from repro.perf.report import render_compile_report
from repro.workloads import registry

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"

GEMM_TYPES = {
    "a_desc": TensorDescType(f16), "b_desc": TensorDescType(f16),
    "c_ptr": PointerType(f16), "M": i32, "N": i32, "K": i32,
}
#: 64^3 tiles fit one consumer group, so the mutated kernels also *run*.
GEMM_CONSTS = {"stride_cm": 128, "stride_cn": 1, "Mt": 64, "Nt": 64, "Kt": 64}
MID_OPTIONS = CompileOptions(lower_to="tawa", num_consumer_groups=1)


def compile_mid_gemm():
    """A fresh mid-level (tawa dialect) GEMM compile for mutation."""
    return compile_kernel(matmul_kernel, GEMM_TYPES, GEMM_CONSTS, MID_OPTIONS)


# ---------------------------------------------------------------------------
# The mutation corpus: each entry seeds one protocol violation into a
# *correct* kernel.  ``static`` names the diagnostic code analyze_channels
# must emit; ``dynamic`` says whether Device(sanitize=True) must also raise.
# ---------------------------------------------------------------------------

def mutate_drop_consumed(func):
    next(op for op in func.walk() if isinstance(op, tawa.ConsumedOp)).detach()


def mutate_shrink_depth(func):
    create = next(op for op in func.walk() if isinstance(op, tawa.CreateArefOp))
    create.attributes["depth"] = 1


def mutate_skew_index(func):
    target = next(
        s for s in func.walk() if isinstance(s, tawa.ArefSlotOp)
        and any(isinstance(u, tawa.GetOp) for u, _ in s.result.uses)
    )
    one = arith.ConstantOp(1, target.index.type)
    add = arith.AddIOp(target.index, one.result)
    target.parent.insert_before(target, one)
    target.parent.insert_before(target, add)
    target.set_operand(1, add.result)


def mutate_double_put(func):
    put = next(op for op in func.walk() if isinstance(op, tawa.PutOp))
    put.parent.insert_after(put, tawa.PutOp(put.slot, list(put.values)))


def mutate_extra_consumed(func):
    consumed = next(op for op in func.walk() if isinstance(op, tawa.ConsumedOp))
    consumed.parent.insert_after(consumed, tawa.ConsumedOp(consumed.slot))


def mutate_flip_role(func):
    wg = next(op for op in func.walk()
              if isinstance(op, tawa.WarpGroupOp) and op.is_producer)
    wg.attributes["role"] = "consumer"


MUTATIONS = [
    # (name, mutator, static diagnostic code, dynamically catchable?)
    ("drop-consumed", mutate_drop_consumed, "aref-missing-consumed", True),
    ("shrink-depth", mutate_shrink_depth, "aref-depth-insufficient", False),
    # A skewed index shifts which generation the consumer reads: the protocol
    # stays balanced (no dynamic signal), the data is silently wrong -- only
    # the static index-agreement check catches it.
    ("skew-index", mutate_skew_index, "aref-index-skew", False),
    ("double-put", mutate_double_put, "aref-double-put", True),
    ("extra-consumed", mutate_extra_consumed, "aref-spurious-consumed", True),
    ("flip-role", mutate_flip_role, "aref-role-mismatch", True),
]


def mutated_gemm(name):
    mutator = next(m for n, m, _, _ in MUTATIONS if n == name)
    compiled = compile_mid_gemm()
    mutator(compiled.func)
    return compiled


# ---------------------------------------------------------------------------
# Channel analysis: golden rendered diagnostic per violation class
# ---------------------------------------------------------------------------

class TestChannelGoldens:
    def _diags(self, name):
        compiled = mutated_gemm(name)
        return [d.render() for d in analyze_channels(compiled.func, MID_OPTIONS)]

    def test_clean_kernel_has_no_findings(self):
        compiled = compile_mid_gemm()
        assert analyze_channels(compiled.func, MID_OPTIONS) == []

    def test_drop_consumed(self):
        assert self._diags("drop-consumed") == [
            "error: [aref-missing-consumed] matmul_kernel/consumer@1 tawa.get: "
            "get on 'aref0' is never released by tawa.consumed; the slot never "
            "returns to EMPTY, so the producer deadlocks when the ring index "
            "wraps"
        ]

    def test_shrink_depth(self):
        assert self._diags("shrink-depth") == [
            "error: [aref-depth-insufficient] matmul_kernel/top-level "
            "tawa.create_aref: 'aref0' has depth D=1 but the pipelining "
            "distance is P=2; liveness requires D >= P (feasible region of "
            "Fig. 11)"
        ]

    def test_skew_index(self):
        assert self._diags("skew-index") == [
            "error: [aref-index-skew] matmul_kernel/consumer@1 tawa.aref_slot: "
            "producer and consumer of 'aref0' select slots with different "
            "index expressions: the producer fills generation i while the "
            "consumer waits on a different generation"
        ]

    def test_double_put(self):
        assert self._diags("double-put") == [
            "error: [aref-double-put] matmul_kernel/producer@0 tawa.put: "
            "2 puts on one generation of 'aref0': the second blocks until a "
            "get, deadlocking the producer"
        ]

    def test_extra_consumed(self):
        assert self._diags("extra-consumed") == [
            "error: [aref-spurious-consumed] matmul_kernel/consumer@1 "
            "tawa.consumed: 2 consumed(s) for 1 get(s) on 'aref0': consumed "
            "without a matching get releases a slot the consumer does not hold"
        ]

    def test_flip_role(self):
        diags = self._diags("flip-role")
        assert (
            "error: [aref-role-mismatch] matmul_kernel/consumer@0 tawa.put: "
            "put on 'aref0' outside a producer region"
        ) in diags

    def test_no_consumer_and_unused(self):
        compiled = compile_mid_gemm()
        for op in list(compiled.func.walk()):
            if isinstance(op, (tawa.GetOp, tawa.ConsumedOp)):
                op.detach()
        codes = {d.code for d in analyze_channels(compiled.func, MID_OPTIONS)}
        assert "aref-no-consumer" in codes

    def test_no_producer(self):
        compiled = compile_mid_gemm()
        for op in list(compiled.func.walk()):
            if isinstance(op, tawa.PutOp):
                op.detach()
        codes = {d.code for d in analyze_channels(compiled.func, MID_OPTIONS)}
        assert "aref-no-producer" in codes


# ---------------------------------------------------------------------------
# Bounds analysis goldens
# ---------------------------------------------------------------------------

@kernel
def masked_kernel(x_ptr, out_ptr, Bt: tl.constexpr):
    offs = tl.arange(0, Bt)
    dead = offs < 0       # provably false: [0, Bt) < 0
    live = offs < Bt      # provably true:  [0, Bt) < Bt
    a = tl.load(x_ptr + offs, mask=dead, other=0.0)
    b = tl.load(x_ptr + offs, mask=live, other=0.0)
    tl.store(out_ptr + offs, a + b, mask=live)


@kernel
def negative_offset_kernel(x_ptr, out_ptr, Bt: tl.constexpr):
    offs = tl.arange(0, Bt)
    val = tl.load(x_ptr + offs - 2 * Bt)   # offset in [-2Bt, -Bt-1]: hi < 0
    tl.store(out_ptr + offs, val)


ELEMENTWISE_OPTIONS = CompileOptions(enable_warp_specialization=False,
                                     software_pipelining=False, lower_to="tt")
PTR_TYPES = {"x_ptr": PointerType(f16), "out_ptr": PointerType(f16)}


class TestBoundsGoldens:
    def test_mask_truth_goldens(self):
        compiled = compile_kernel(masked_kernel, PTR_TYPES, {"Bt": 64},
                                  ELEMENTWISE_OPTIONS)
        assert [d.render() for d in analyze_bounds(compiled.func)] == [
            "warning: [bounds-unreachable-mask] masked_kernel/top-level "
            "tt.load: mask is provably false for every lane; the guarded "
            "access is dead code",
            "note: [bounds-redundant-mask] masked_kernel/top-level tt.load: "
            "mask is provably true for every lane",
            "note: [bounds-redundant-mask] masked_kernel/top-level tt.store: "
            "mask is provably true for every lane",
        ]

    def test_negative_offset_is_an_error(self):
        compiled = compile_kernel(negative_offset_kernel, PTR_TYPES,
                                  {"Bt": 64}, ELEMENTWISE_OPTIONS)
        diags = analyze_bounds(compiled.func)
        errors = [d for d in diags if d.severity is Severity.ERROR]
        assert len(errors) == 1
        assert errors[0].code == "bounds-negative-offset"
        assert "provably negative" in errors[0].message

    def test_gemm_masked_epilogue_is_clean(self):
        compiled = compile_mid_gemm()
        assert [d for d in analyze_bounds(compiled.func)
                if d.severity is Severity.ERROR] == []


# ---------------------------------------------------------------------------
# Resource lints (shared implementation with tune.cost.static_infeasibility)
# ---------------------------------------------------------------------------

def _metadata(**kw):
    base = dict(smem_bytes=64 * 1024, warp_specialized=True,
                consumer_replicas=1, consumer_regs_per_thread=180,
                num_warp_groups=2)
    base.update(kw)
    return SimpleNamespace(**base)


class TestResourceLints:
    def test_clean_metadata_has_no_findings(self):
        assert analyze_resources("k", _metadata(), CompileOptions()) == []

    def test_smem_budget_golden(self):
        diags = analyze_resources("matmul_kernel",
                                  _metadata(smem_bytes=400 * 1024),
                                  CompileOptions())
        assert [d.render() for d in diags] == [
            "error: [resource-smem-budget] matmul_kernel/top-level "
            "resource-estimate: shared-memory footprint 400 KiB exceeds the "
            "228 KiB available per SM (reduce the tile size or aref depth D=2)"
        ]

    def test_register_budget_golden(self):
        diags = analyze_resources("matmul_kernel",
                                  _metadata(consumer_regs_per_thread=300),
                                  CompileOptions())
        assert [d.render() for d in diags] == [
            "error: [resource-register-budget] matmul_kernel/top-level "
            "resource-estimate: consumer warp group needs ~300 "
            "registers/thread but only 232 are available; use cooperative "
            "consumer warp groups (num_consumer_groups=2) or a smaller tile"
        ]

    def test_agrees_with_autotuner_static_infeasibility(self):
        from repro.tune.cost import static_infeasibility

        fits = GemmProblem(8192, 8192, 8192, block_m=128, block_n=256)
        assert static_infeasibility(
            fits, CompileOptions(num_consumer_groups=2), DEFAULT_CONFIG) is None
        too_big = GemmProblem(8192, 8192, 8192, block_m=256, block_n=256)
        reason = static_infeasibility(
            too_big, CompileOptions(aref_depth=4, num_consumer_groups=1),
            DEFAULT_CONFIG)
        assert reason is not None
        assert "KiB" in reason or "registers" in reason


# ---------------------------------------------------------------------------
# Mutation differential suite: zero silent escapes
# ---------------------------------------------------------------------------

def run_mutated_sanitized(compiled):
    """Launch a (possibly broken) mid-level kernel under the sanitizer."""
    device = Device(sanitize=True, workers=1)
    problem = GemmProblem(128, 128, 128, block_m=64, block_n=64, block_k=64)
    args, _, _ = make_gemm_inputs(problem, device)
    return device.run(compiled, grid=problem.grid, args=args,
                      constexprs=problem.constexprs(), options=MID_OPTIONS)


class TestMutationDifferential:
    @pytest.mark.parametrize("name,mutator,code,dynamic",
                             MUTATIONS, ids=[m[0] for m in MUTATIONS])
    def test_static_catch(self, name, mutator, code, dynamic):
        compiled = compile_mid_gemm()
        mutator(compiled.func)
        codes = {d.code for d in analyze_channels(compiled.func, MID_OPTIONS)
                 if d.severity is Severity.ERROR}
        assert code in codes, f"mutation {name!r} escaped the static analyzer"

    @pytest.mark.parametrize(
        "name", [m[0] for m in MUTATIONS if m[3]])
    def test_dynamic_catch(self, name):
        compiled = mutated_gemm(name)
        with pytest.raises(SimulationError):
            run_mutated_sanitized(compiled)

    def test_zero_silent_escapes(self):
        """Every seeded mutation is caught statically or dynamically."""
        escaped = []
        for name, mutator, _, dynamic in MUTATIONS:
            compiled = compile_mid_gemm()
            mutator(compiled.func)
            statically = any(
                d.severity is Severity.ERROR
                for d in analyze_channels(compiled.func, MID_OPTIONS)
            )
            dynamically = False
            if not statically and dynamic:
                try:
                    run_mutated_sanitized(compiled)
                except SimulationError:
                    dynamically = True
            if not (statically or dynamically):
                escaped.append(name)
        assert escaped == []

    def test_clean_kernel_passes_sanitized_run(self):
        import numpy as np
        device = Device(sanitize=True, workers=1)
        problem = GemmProblem(128, 128, 128, block_m=64, block_n=64,
                              block_k=64)
        args, a, b = make_gemm_inputs(problem, device)
        device.run(matmul_kernel, grid=problem.grid, args=args,
                   constexprs=problem.constexprs(), options=MID_OPTIONS)
        c = args["c_ptr"].buffer.to_numpy().astype(np.float32)
        expected = (a.astype(np.float16).astype(np.float32)
                    @ b.astype(np.float16).astype(np.float32).T)
        np.testing.assert_allclose(c, expected.astype(np.float16), rtol=2e-2,
                                   atol=2e-2)
        assert COUNTERS.analysis_sanitized_launches == 1


# ---------------------------------------------------------------------------
# The sanitizer state machine itself (unit level)
# ---------------------------------------------------------------------------

class TestCtaSanitizer:
    def test_role_mismatch(self):
        san = CtaSanitizer("cta0")
        slot = ArefSlot(name="aref0[0]")
        with pytest.raises(SanitizerError, match="allowed: producer"):
            san.record("put", slot, "consumer")

    def test_protocol_divergence_double_put(self):
        san = CtaSanitizer("cta0")
        slot = ArefSlot(name="aref0[0]")
        san.record("put", slot, "producer")
        with pytest.raises(SanitizerError):
            san.record("put", slot, "producer")

    def test_consumed_without_get(self):
        san = CtaSanitizer("cta0")
        slot = ArefSlot(name="aref0[0]")
        san.record("put", slot, "producer")
        with pytest.raises(SanitizerError):
            san.record("consumed", slot, "consumer")

    def test_finalize_flags_undrained_slots(self):
        san = CtaSanitizer("cta0")
        slot = ArefSlot(name="aref0[0]")
        san.record("put", slot, "producer")
        san.record("get", slot, "consumer")
        with pytest.raises(SanitizerError, match="non-EMPTY"):
            san.finalize()

    def test_full_protocol_round_trip_is_clean(self):
        san = CtaSanitizer("cta0")
        slot = ArefSlot(name="aref0[0]")
        for _ in range(3):
            san.record("put", slot, "producer")
            san.record("get", slot, "consumer")
            san.record("consumed", slot, "consumer")
        san.finalize()


# ---------------------------------------------------------------------------
# Device knobs and engine selection
# ---------------------------------------------------------------------------

class TestSanitizerWiring:
    def test_sanitize_forces_serial_executor(self):
        device = Device(sanitize=True)
        assert isinstance(device.executor(), SerialExecutor)

    def test_sanitize_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SANITIZE", "1")
        assert Device().sanitize is True
        monkeypatch.setenv("REPRO_SIM_SANITIZE", "0")
        assert Device().sanitize is False

    def test_explicit_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SANITIZE", "1")
        assert Device(sanitize=False).sanitize is False

    def test_sanitize_plus_codegen_raises(self):
        with pytest.raises(SimulationError):
            validate_engine_settings(codegen=True, sanitize=True)

    def test_sanitize_plus_pool_raises(self):
        with pytest.raises(SimulationError):
            validate_engine_settings(pool=True, sanitize=True)


# ---------------------------------------------------------------------------
# The opt-in pipeline stage
# ---------------------------------------------------------------------------

class TestAnalysisPass:
    def test_stage_runs_inside_the_pipeline(self):
        compiled = compile_kernel(
            matmul_kernel, GEMM_TYPES, GEMM_CONSTS,
            CompileOptions(lower_to="tawa", num_consumer_groups=1,
                           run_analysis=True))
        assert "static-analysis" in compiled.pass_timings
        assert COUNTERS.analysis_runs >= 1

    def test_stage_is_absent_by_default(self):
        compiled = compile_mid_gemm()
        assert "static-analysis" not in compiled.pass_timings

    def test_stage_rejects_broken_ir(self):
        compiled = mutated_gemm("double-put")
        pipeline_stage = AnalysisPass(MID_OPTIONS)
        with pytest.raises(CompileError, match="aref-double-put"):
            pipeline_stage.run_on_function(compiled.func, compiled.module)


# ---------------------------------------------------------------------------
# Artifact caching: memory tier in-process, counters, report line
# ---------------------------------------------------------------------------

class TestAnalysisArtifacts:
    def test_memory_tier_memoizes(self):
        service = CompilerService()
        compiled = service.compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS,
                                   MID_OPTIONS)
        first = get_analysis(compiled, DEFAULT_CONFIG)
        runs = COUNTERS.analysis_runs
        second = get_analysis(compiled, DEFAULT_CONFIG)
        assert second is first
        assert COUNTERS.analysis_runs == runs
        assert COUNTERS.analysis_memory_hits >= 1

    def test_disk_tier_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        service = CompilerService()
        compiled = service.compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS,
                                   MID_OPTIONS)
        first = get_analysis(compiled, DEFAULT_CONFIG)
        assert COUNTERS.analysis_disk_writes == 1
        # A fresh compile object (same fingerprint) misses the memo but hits
        # the disk tier: no re-analysis.
        other = CompilerService().compile(matmul_kernel, GEMM_TYPES,
                                          GEMM_CONSTS, MID_OPTIONS)
        runs = COUNTERS.analysis_runs
        second = get_analysis(other, DEFAULT_CONFIG)
        assert COUNTERS.analysis_runs == runs
        assert COUNTERS.analysis_disk_hits == 1
        assert second.payload() == first.payload()

    def test_result_payload_round_trip(self):
        diag = Diagnostic(Severity.WARNING, "bounds-unproven-access", "msg",
                          "k", "tt.load", "consumer@0")
        result = AnalysisResult(kernel_name="k", diagnostics=(diag,))
        clone = AnalysisResult.from_payload(result.payload())
        assert clone == result
        assert clone.diagnostics[0].render() == diag.render()

    def test_compile_report_has_analysis_line(self):
        compiled = compile_mid_gemm()
        analyze_channels(compiled.func, MID_OPTIONS)
        report = render_compile_report()
        assert "analysis artifacts:" in report
        assert "sanitized launches" in report


# ---------------------------------------------------------------------------
# The lint gate: all registered workloads are clean
# ---------------------------------------------------------------------------

class TestLintGate:
    def test_all_workloads_lint_clean(self):
        results = lint_workloads(registry.list_workloads())
        assert results, "no workloads registered?"
        dirty = [(name, [d.render() for d in result.diagnostics])
                 for name, result in results if not result.ok]
        assert dirty == []

    def test_cli_exits_zero_and_writes_json(self, tmp_path, capsys):
        import json
        out = tmp_path / "lint.json"
        assert lint_main(["lint", "gemm", "--json", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["workloads"] == ["gemm"]
        assert all(entry["errors"] == 0 for entry in report["results"])
        assert capsys.readouterr().out.count("matmul_kernel") >= 1

    def test_cli_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            lint_main(["lint", "no-such-workload"])


# ---------------------------------------------------------------------------
# Warm-reuse cold-start guarantee, proven from subprocesses
# ---------------------------------------------------------------------------

def _run_lint_process(cache_dir, expect):
    env = {
        "PYTHONPATH": str(SRC_DIR),
        "REPRO_CACHE_DIR": str(cache_dir),
        "PATH": "/usr/bin:/bin",
    }
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", "gemm", "layernorm",
         "--expect-analysis", expect],
        capture_output=True, text=True, env=env, timeout=300,
    )


class TestWarmProcessReuse:
    def test_second_process_reuses_every_analysis(self, tmp_path):
        cache = tmp_path / "cache"
        cold = _run_lint_process(cache, "cold")
        assert cold.returncode == 0, cold.stdout + cold.stderr
        assert "-- analysis 0 runs" not in cold.stdout

        warm = _run_lint_process(cache, "warm")
        assert warm.returncode == 0, warm.stdout + warm.stderr
        assert "-- analysis 0 runs" in warm.stdout

        # The expectation gate itself has teeth: demanding a cold run from a
        # warm cache fails.
        stale = _run_lint_process(cache, "cold")
        assert stale.returncode == 1, stale.stdout + stale.stderr
