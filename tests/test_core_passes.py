"""Tests for the Tawa passes: tagging, partitioning, pipelining, lowering,
persistent kernels and resource validation -- checked on the real GEMM and
attention kernels through the compilation driver."""

import pytest

from repro.core.compiler import build_pass_pipeline, compile_kernel
from repro.core.options import CompileError, CompileOptions
from repro.core.pipelines import (
    PipelineSpec,
    available_pipelines,
    get_pipeline,
    register_pipeline,
    resolve_pipeline_name,
)
from repro.core.tagging import ROLE_ATTR, tag_function
from repro.frontend import kernel, tl
from repro.ir import print_op, verify
from repro.ir.dialects import scf, tawa
from repro.ir.types import PointerType, TensorDescType, f16, f32, i32
from repro.kernels.attention import attention_kernel
from repro.kernels.gemm import matmul_kernel

GEMM_TYPES = {
    "a_desc": TensorDescType(f16), "b_desc": TensorDescType(f16),
    "c_ptr": PointerType(f16), "M": i32, "N": i32, "K": i32,
}
GEMM_CONSTS = {"stride_cm": 128, "stride_cn": 1, "Mt": 64, "Nt": 128, "Kt": 32}

ATTN_TYPES = {
    "q_desc": TensorDescType(f16), "k_desc": TensorDescType(f16),
    "v_desc": TensorDescType(f16), "o_ptr": PointerType(f16),
    "L": i32, "sm_scale": f32,
}
ATTN_CONSTS = {"D": 64, "Bm": 64, "Bn": 64, "causal": False, "stride_om": 64}


def compile_gemm(**option_kwargs):
    options = CompileOptions(**option_kwargs)
    return compile_kernel(matmul_kernel, GEMM_TYPES, GEMM_CONSTS, options)


def compile_attention(**option_kwargs):
    options = CompileOptions(**option_kwargs)
    return compile_kernel(attention_kernel, ATTN_TYPES, ATTN_CONSTS, options)


class TestTagging:
    def _tagged_gemm_func(self):
        spec = matmul_kernel.specialize(GEMM_TYPES, GEMM_CONSTS)
        module = matmul_kernel.build_module(spec)
        func = module.get_function("matmul_kernel")
        tag_function(func)
        return func

    def test_loads_tagged_as_load(self):
        func = self._tagged_gemm_func()
        loads = [op for op in func.walk() if op.name == "tt.tma_load"]
        assert loads and all(op.get_attr(ROLE_ATTR) == "load" for op in loads)

    def test_dot_and_store_tagged_as_tile(self):
        func = self._tagged_gemm_func()
        assert all(op.get_attr(ROLE_ATTR) == "tile"
                   for op in func.walk() if op.name in ("tt.dot", "tt.store"))

    def test_offset_update_tagged_as_iteration(self):
        # The `o_k += Kt` update feeding the TMA coordinates is an iteration
        # statement even though it is textually separated from the loads.
        func = self._tagged_gemm_func()
        loop = next(op for op in func.walk() if isinstance(op, scf.ForOp))
        adds = [op for op in loop.body.operations if op.name == "arith.addi"]
        assert any(op.get_attr(ROLE_ATTR) == "iteration" for op in adds)

    def test_every_op_gets_some_role(self):
        func = self._tagged_gemm_func()
        assert all(op.has_attr(ROLE_ATTR) for op in func.walk() if op is not func)


class TestPartitioning:
    def test_two_warp_groups_created(self):
        compiled = compile_gemm(lower_to="tawa")
        wgs = [op for op in compiled.func.body.operations if isinstance(op, tawa.WarpGroupOp)]
        assert len(wgs) == 2
        assert wgs[0].is_producer and wgs[1].is_consumer
        assert compiled.func.get_attr("tawa.warp_specialized") is True

    def test_producer_owns_loads_consumer_owns_dots_and_stores(self):
        compiled = compile_gemm(lower_to="tawa")
        producer, consumer = [op for op in compiled.func.body.operations
                              if isinstance(op, tawa.WarpGroupOp)]
        prod_names = {op.name for op in producer.walk()}
        cons_names = {op.name for op in consumer.walk()}
        assert "tt.tma_load" in prod_names and "tawa.put" in prod_names
        assert "tt.dot" not in prod_names and "tt.store" not in prod_names
        assert "tt.dot" in cons_names and "tt.store" in cons_names
        assert "tt.tma_load" not in cons_names
        assert "tawa.get" in cons_names and "tawa.consumed" in cons_names

    def test_loads_feeding_same_dot_share_one_aref(self):
        compiled = compile_gemm(lower_to="tawa")
        arefs = [op for op in compiled.func.body.operations
                 if isinstance(op, tawa.CreateArefOp)]
        assert len(arefs) == 1
        assert len(arefs[0].payload_types) == 2  # A and B tiles travel together
        assert arefs[0].depth == 2

    def test_attention_gets_separate_channels_for_q_k_v(self):
        compiled = compile_attention(lower_to="tawa")
        arefs = [op for op in compiled.func.body.operations
                 if isinstance(op, tawa.CreateArefOp)]
        assert len(arefs) == 3
        depths = sorted(op.depth for op in arefs)
        assert depths == [1, 2, 2]  # Q is a one-shot prologue channel

    def test_partitions_are_self_contained(self):
        """Every operand of a warp-group op is defined inside it, at the top
        level (arefs / function arguments), i.e. duplication really happened."""
        compiled = compile_gemm(lower_to="tawa")
        verify(compiled.module)
        producer, consumer = [op for op in compiled.func.body.operations
                              if isinstance(op, tawa.WarpGroupOp)]
        # pid/offset arithmetic appears in both partitions (duplicated).
        prod_muls = sum(1 for op in producer.walk() if op.name == "arith.muli")
        cons_muls = sum(1 for op in consumer.walk() if op.name == "arith.muli")
        assert prod_muls > 0 and cons_muls > 0

    def test_scalar_address_loads_duplicated_into_both_partitions(self):
        from repro.kernels.grouped_gemm import grouped_matmul_kernel

        types = {"a_desc": TensorDescType(f16), "b_desc": TensorDescType(f16),
                 "c_ptr": PointerType(f16), "tile_am_ptr": PointerType(i32),
                 "tile_bn_ptr": PointerType(i32), "tile_cn_ptr": PointerType(i32),
                 "K": i32}
        consts = {"stride_cm": 128, "Mt": 64, "Nt": 64, "Kt": 32}
        compiled = compile_kernel(grouped_matmul_kernel, types, consts,
                                  CompileOptions(lower_to="tawa"))
        producer, consumer = [op for op in compiled.func.body.operations
                              if isinstance(op, tawa.WarpGroupOp)]
        assert any(op.name == "tt.load" for op in producer.walk())
        assert any(op.name == "tt.load" for op in consumer.walk())

    def test_kernel_without_dots_is_left_alone(self):
        @kernel
        def copy_kernel(x_ptr, y_ptr, BLOCK: tl.constexpr):
            offs = tl.arange(0, BLOCK)
            tl.store(y_ptr + offs, tl.load(x_ptr + offs))

        compiled = compile_kernel(copy_kernel,
                                  {"x_ptr": PointerType(f32), "y_ptr": PointerType(f32)},
                                  {"BLOCK": 64}, CompileOptions())
        assert compiled.func.get_attr("tawa.warp_specialized") is False
        assert not any(isinstance(op, tawa.WarpGroupOp) for op in compiled.func.walk())


class TestPipelining:
    def test_fine_grained_marks_dot_async_and_inserts_wait(self):
        compiled = compile_gemm(mma_pipeline_depth=2, aref_depth=2)
        text = compiled.ir()
        assert "gpu.wgmma" in text
        assert "gpu.wgmma_wait" in text
        waits = [op for op in compiled.func.walk() if op.name == "gpu.wgmma_wait"]
        assert any(op.pendings == 1 for op in waits)   # P-1 outstanding in the loop
        assert any(op.pendings == 0 for op in waits)   # drained in the epilogue

    def test_consumed_release_is_guarded_for_prologue(self):
        compiled = compile_gemm(mma_pipeline_depth=2, aref_depth=2, lower_to="gpu")
        consumer = [op for op in compiled.func.body.operations
                    if isinstance(op, tawa.WarpGroupOp)][1]
        assert any(op.name == "scf.if" for op in consumer.walk())

    def test_coarse_grained_rotates_attention_loop(self):
        compiled = compile_attention(aref_depth=2)
        consumer = [op for op in compiled.func.body.operations
                    if isinstance(op, tawa.WarpGroupOp)][1]
        loops = [op for op in consumer.walk() if isinstance(op, scf.ForOp)]
        assert any(op.get_attr("tawa.pipeline") == "coarse" for op in loops)
        # The rotated loop carries the previous iteration's QK tile.
        rotated = next(op for op in loops if op.get_attr("tawa.pipeline") == "coarse")
        assert len(rotated.iter_args) > 3

    def test_coarse_grained_skipped_for_single_slot_channels(self):
        compiled = compile_attention(aref_depth=1, mma_pipeline_depth=1)
        consumer = [op for op in compiled.func.body.operations
                    if isinstance(op, tawa.WarpGroupOp)][1]
        loops = [op for op in consumer.walk() if isinstance(op, scf.ForOp)]
        assert all(op.get_attr("tawa.pipeline") != "coarse" for op in loops)

    def test_pipelining_can_be_disabled(self):
        compiled = compile_gemm(fine_grained_pipelining=False,
                                coarse_grained_pipelining=False)
        consumer = [op for op in compiled.func.body.operations
                    if isinstance(op, tawa.WarpGroupOp)][1]
        loops = [op for op in consumer.walk() if isinstance(op, scf.ForOp)]
        assert all(not op.has_attr("tawa.pipeline") for op in loops)


class TestArefLowering:
    def test_tawa_ops_fully_lowered(self):
        compiled = compile_gemm()
        text = compiled.ir()
        for name in ("tawa.create_aref", "tawa.put", "tawa.get", "tawa.consumed",
                     "tawa.aref_slot", "tt.tma_load", "tt.dot"):
            assert name + "(" not in text and name + " " not in text, name
        assert "gpu.tma_async_load" in text
        assert "gpu.mbarrier_wait" in text
        assert "gpu.mbarrier_arrive" in text
        assert "gpu.mbarrier_expect_tx" in text

    def test_one_buffer_ring_and_two_barrier_arrays_per_aref(self):
        compiled = compile_gemm(aref_depth=2)
        allocs = [op for op in compiled.func.body.operations if op.name == "gpu.alloc_smem"]
        bars = [op for op in compiled.func.body.operations if op.name == "gpu.mbarrier_alloc"]
        assert len(allocs) == 2    # A ring and B ring
        assert len(bars) == 2      # empty + full arrays
        assert all(op.count == 2 for op in bars)
        assert all(op.buffer_type.shape[0] == 2 for op in allocs)

    def test_empty_barrier_arrival_count_matches_consumer_replicas(self):
        compiled = compile_gemm(num_consumer_groups=2)
        bars = [op for op in compiled.func.body.operations if op.name == "gpu.mbarrier_alloc"]
        counts = sorted(op.arrive_count for op in bars)
        assert counts == [0, 2]  # full barrier is tx-driven, empty waits for both replicas

    def test_expect_tx_bytes_cover_the_whole_tuple(self):
        compiled = compile_gemm()
        expects = [op for op in compiled.func.walk() if op.name == "gpu.mbarrier_expect_tx"]
        assert expects
        a_bytes = 64 * 32 * 2
        b_bytes = 128 * 32 * 2
        assert all(op.bytes == a_bytes + b_bytes for op in expects)

    def test_smem_footprint_scales_with_depth(self):
        small = compile_gemm(aref_depth=2).metadata.smem_bytes
        large = compile_gemm(aref_depth=3).metadata.smem_bytes
        assert large == pytest.approx(small * 1.5, rel=0.01)

    def test_lowered_ir_verifies(self):
        compiled = compile_gemm()
        verify(compiled.module)


class TestPersistentAndResources:
    def test_persistent_wraps_body_in_tile_loop(self):
        compiled = compile_gemm(persistent=True, lower_to="tawa")
        producer = [op for op in compiled.func.body.operations
                    if isinstance(op, tawa.WarpGroupOp)][0]
        outer_loops = [op for op in producer.body.operations if isinstance(op, scf.ForOp)]
        assert outer_loops, "persistent tile loop missing from the producer"
        text = print_op(compiled.func)
        assert "gpu.cta_id" in text and "gpu.num_tiles" in text and "gpu.num_ctas" in text

    def test_persistent_requires_1d_grid(self):
        with pytest.raises(CompileError, match="1-D grid"):
            compile_attention(persistent=True)

    def test_register_budget_rejects_large_tile_single_group(self):
        consts = dict(GEMM_CONSTS, Mt=128, Nt=256, Kt=64)
        with pytest.raises(CompileError, match="register"):
            compile_kernel(matmul_kernel, GEMM_TYPES, consts,
                           CompileOptions(num_consumer_groups=1))

    def test_cooperative_groups_make_large_tile_feasible(self):
        consts = dict(GEMM_CONSTS, Mt=128, Nt=256, Kt=64)
        compiled = compile_kernel(matmul_kernel, GEMM_TYPES, consts,
                                  CompileOptions(num_consumer_groups=2))
        assert compiled.metadata.consumer_replicas == 2

    def test_smem_budget_rejects_huge_depth(self):
        consts = dict(GEMM_CONSTS, Mt=128, Nt=256, Kt=64)
        with pytest.raises(CompileError, match="shared-memory"):
            compile_kernel(matmul_kernel, GEMM_TYPES, consts,
                           CompileOptions(aref_depth=8, num_consumer_groups=2))

    def test_validation_can_be_disabled(self):
        consts = dict(GEMM_CONSTS, Mt=128, Nt=256, Kt=64)
        compiled = compile_kernel(matmul_kernel, GEMM_TYPES, consts,
                                  CompileOptions(num_consumer_groups=1,
                                                 validate_resources=False))
        assert compiled.metadata.consumer_regs_per_thread > 232

    def test_resource_estimate_fields(self):
        compiled = compile_gemm(num_consumer_groups=2)
        est = compiled.metadata
        assert est.warp_specialized
        assert est.num_warp_groups == 3  # 1 producer + 2 cooperative consumers
        assert est.smem_bytes > 0
        assert "KiB" in est.describe()


class TestPipelineRegistry:
    def test_builtin_pipelines_registered(self):
        names = available_pipelines()
        for expected in ("tawa-gpu", "tawa-mid", "triton-baseline", "naive",
                         "frontend-only"):
            assert expected in names

    def test_options_resolve_to_pipeline_names(self):
        assert resolve_pipeline_name(CompileOptions()) == "tawa-gpu"
        assert resolve_pipeline_name(CompileOptions(lower_to="tawa")) == "tawa-mid"
        assert resolve_pipeline_name(CompileOptions(lower_to="tt")) == "frontend-only"
        assert resolve_pipeline_name(
            CompileOptions(enable_warp_specialization=False)) == "triton-baseline"
        assert resolve_pipeline_name(
            CompileOptions(enable_warp_specialization=False,
                           software_pipelining=False)) == "naive"

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(CompileError, match="unknown pass pipeline"):
            get_pipeline("no-such-pipeline")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(CompileError, match="already registered"):
            register_pipeline(PipelineSpec("tawa-gpu", "dup", lambda o, c: []))

    def test_every_pipeline_is_bracketed(self):
        # Canonicalize in front, resource validation at the back -- for every
        # registered strategy.
        for options in (CompileOptions(), CompileOptions(lower_to="tawa"),
                        CompileOptions(lower_to="tt"),
                        CompileOptions(enable_warp_specialization=False)):
            names = [p.name for p in build_pass_pipeline(options).passes]
            assert names[0] == "canonicalize"
            assert names[-1] == "resource-validation"

    def test_compiled_artifact_records_pipeline_and_timings(self):
        compiled = compile_kernel(matmul_kernel, GEMM_TYPES, GEMM_CONSTS,
                                  CompileOptions(num_consumer_groups=2))
        assert compiled.pipeline == "tawa-gpu"
        assert compiled.fingerprint is not None
        assert "warp-specialize" in compiled.pass_timings
        assert all(seconds >= 0.0 for seconds in compiled.pass_timings.values())


class TestDriver:
    def test_pipeline_contents_depend_on_options(self):
        ws_passes = [p.name for p in build_pass_pipeline(CompileOptions()).passes]
        baseline_passes = [p.name for p in build_pass_pipeline(
            CompileOptions(enable_warp_specialization=False)).passes]
        assert "warp-specialize" in ws_passes and "aref-lowering" in ws_passes
        assert "warp-specialize" not in baseline_passes
        assert "baseline-cp-async-pipeline" in baseline_passes

    def test_compile_requires_kernel_object(self):
        with pytest.raises(CompileError):
            compile_kernel(lambda x: x, {}, {}, CompileOptions())

    def test_dump_ir_records_pass_outputs(self):
        compiled = compile_kernel(matmul_kernel, GEMM_TYPES, GEMM_CONSTS,
                                  CompileOptions(), dump_ir=True)
        assert "warp-specialize" in compiled.pass_dumps
        assert "tawa.warp_group" in compiled.pass_dumps["warp-specialize"]

    def test_compiled_kernel_metadata(self):
        compiled = compile_gemm()
        assert compiled.name == "matmul_kernel"
        assert compiled.arg_names == ["a_desc", "b_desc", "c_ptr", "M", "N", "K"]
        assert "warp-specialized" in repr(compiled)
