"""Unit and property tests for the simulator: mbarriers, resources, engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.config import DEFAULT_CONFIG
from repro.gpusim.engine import (
    Agent,
    ArefProtocolError,
    ArefSlotRuntime,
    CopyEngine,
    DeadlockError,
    Delay,
    Engine,
    MBarrier,
    SMResources,
    TensorCoreUnit,
    TmaEngine,
    TmaIssue,
    WaitBarrier,
    WgmmaIssue,
    WgmmaWait,
)


class TestMBarrier:
    def test_arrival_count_completes_generation(self):
        bar = MBarrier(arrive_count=2)
        assert not bar.arrive()
        assert bar.arrive()
        assert bar.completed == 1
        assert bar.satisfied(1) and not bar.satisfied(2)

    def test_transaction_bytes_complete_generation(self):
        bar = MBarrier(arrive_count=0)
        assert not bar.expect_tx(1024)
        assert not bar.credit_tx(512)
        assert bar.credit_tx(512)
        assert bar.completed == 1

    def test_unarmed_barrier_never_completes(self):
        bar = MBarrier(arrive_count=0)
        assert not bar.credit_tx(4096)
        assert bar.completed == 0

    def test_excess_tx_carries_over(self):
        bar = MBarrier(arrive_count=0)
        bar.expect_tx(100)
        bar.credit_tx(150)
        assert bar.completed == 1
        bar.expect_tx(50)
        assert bar._maybe_complete() or bar.completed == 2

    def test_generation_zero_always_satisfied(self):
        # Producers wait for generation k//D; the first pass is free, which is
        # what makes the initially-EMPTY slots writable.
        bar = MBarrier(arrive_count=1)
        assert bar.satisfied(0)

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_generations_count_arrivals_in_units_of_count(self, count, arrivals):
        bar = MBarrier(arrive_count=count)
        for _ in range(arrivals):
            bar.arrive()
        assert bar.completed == arrivals // count
        assert bar.arrivals == arrivals % count


class TestResources:
    def test_tma_engine_serializes_copies(self):
        tma = TmaEngine(DEFAULT_CONFIG)
        first = tma.submit_copy(0.0, 44 * 100)   # 100 cycles of service
        second = tma.submit_copy(0.0, 44 * 100)
        assert second - first == pytest.approx(100, rel=0.01)
        assert tma.bytes_copied == 2 * 4400

    def test_copy_engine_slower_than_tma(self):
        tma = TmaEngine(DEFAULT_CONFIG)
        cp = CopyEngine(DEFAULT_CONFIG)
        assert cp.bytes_per_cycle < tma.bytes_per_cycle

    def test_tensor_core_full_vs_narrow_chain_rate(self):
        tc = TensorCoreUnit(DEFAULT_CONFIG)
        flops = 2 * 128 * 128 * 64
        wide_done = tc.submit_wgmma(0.0, flops, 16, acc_n=256, chain="wide")
        tc2 = TensorCoreUnit(DEFAULT_CONFIG)
        narrow_done = tc2.submit_wgmma(0.0, flops, 16, acc_n=128, chain="narrow")
        assert narrow_done > wide_done  # narrow accumulators run below peak

    def test_independent_chains_interleave(self):
        """Two chains of narrow WGMMAs together approach the unit's full rate."""
        config = DEFAULT_CONFIG
        tc = TensorCoreUnit(config)
        flops = 2 * 128 * 128 * 64
        last = 0.0
        for i in range(8):
            last = max(last, tc.submit_wgmma(0.0, flops, 16, 128, chain="t"))
            last = max(last, tc.submit_wgmma(0.0, flops, 16, 128, chain="u"))
        single = TensorCoreUnit(config)
        last_single = 0.0
        for i in range(16):
            last_single = max(last_single, single.submit_wgmma(0.0, flops, 16, 128, chain="t"))
        assert last < last_single * 0.75

    def test_fp8_twice_as_fast(self):
        tc = TensorCoreUnit(DEFAULT_CONFIG)
        flops = 2 * 128 * 256 * 64
        fp16 = tc.submit_wgmma(0.0, flops, 16, 256, chain="a")
        tc2 = TensorCoreUnit(DEFAULT_CONFIG)
        fp8 = tc2.submit_wgmma(0.0, flops, 8, 256, chain="a")
        assert fp16 / fp8 == pytest.approx(2.0, rel=0.05)


def _run_agents(*generators):
    engine = Engine(DEFAULT_CONFIG)
    sm = SMResources(DEFAULT_CONFIG)
    for i, gen in enumerate(generators):
        engine.add_agent(Agent(f"a{i}", gen, sm))
    return engine.run(), engine


class TestEngine:
    def test_delays_accumulate(self):
        def agent():
            yield Delay(100)
            yield Delay(50)

        time, _ = _run_agents(agent())
        assert time == pytest.approx(150)

    def test_producer_consumer_via_mbarrier(self):
        bar = MBarrier(arrive_count=0)
        order = []

        def producer():
            yield Delay(10)
            bar.expect_tx(1000)
            yield TmaIssue(1000, barrier=bar)
            order.append("produced")

        def consumer():
            yield WaitBarrier(bar, 1)
            order.append("consumed")

        time, _ = _run_agents(producer(), consumer())
        assert order == ["produced", "consumed"]
        assert time > DEFAULT_CONFIG.tma_latency_cycles

    def test_wgmma_wait_blocks_until_drained(self):
        events = []

        def agent():
            yield WgmmaIssue(2 * 128 * 256 * 64, 16, 256, chain="c")
            events.append("issued")
            yield WgmmaWait(0)
            events.append("drained")

        time, _ = _run_agents(agent())
        assert events == ["issued", "drained"]
        assert time > 500

    def test_deadlock_detected_and_described(self):
        bar = MBarrier(arrive_count=1, name="stuck")

        def agent():
            yield WaitBarrier(bar, 1)

        with pytest.raises(DeadlockError, match="stuck"):
            _run_agents(agent())

    def test_aref_runtime_protocol_errors(self):
        slot = ArefSlotRuntime("s")
        with pytest.raises(ArefProtocolError):
            slot.do_get()
        slot.do_put(("x",))
        with pytest.raises(ArefProtocolError):
            slot.do_put(("y",))
        assert slot.do_get() == ("x",)
        slot.do_consumed()
        assert slot.can_put()

    def test_event_cap_guards_against_livelock(self):
        def spinner():
            while True:
                yield Delay(1)

        engine = Engine(DEFAULT_CONFIG, max_events=1000)
        engine.add_agent(Agent("spin", spinner(), SMResources(DEFAULT_CONFIG)))
        with pytest.raises(Exception, match="events"):
            engine.run()

    def test_trace_records_events(self):
        trace = []
        engine = Engine(DEFAULT_CONFIG, trace=trace)
        sm = SMResources(DEFAULT_CONFIG)

        def agent():
            yield WgmmaIssue(1000, 16, 256, chain="x")
            yield WgmmaWait(0)

        engine.add_agent(Agent("a", agent(), sm))
        engine.run()
        kinds = [t[2] for t in trace]
        assert "wgmma_issue" in kinds and "finish" in kinds


class TestConfig:
    def test_peak_tflops_close_to_h100_datasheet(self):
        assert DEFAULT_CONFIG.peak_tflops(16) == pytest.approx(989, rel=0.02)
        assert DEFAULT_CONFIG.peak_tflops(8) == pytest.approx(1979, rel=0.02)

    def test_cycles_seconds_roundtrip(self):
        c = DEFAULT_CONFIG
        assert c.seconds_to_cycles(c.cycles_to_seconds(12345)) == pytest.approx(12345)

    def test_register_budgets(self):
        c = DEFAULT_CONFIG
        assert c.registers_per_thread_available(1) == 255
        assert c.registers_per_thread_available(4) == 128
        assert c.consumer_register_budget(1) == 232
        assert c.consumer_register_budget(2) >= 200

    def test_wgmma_rate_fraction_saturates(self):
        c = DEFAULT_CONFIG
        assert c.wgmma_rate_fraction(256) == 1.0
        assert c.wgmma_rate_fraction(128) == pytest.approx(0.5)
        assert c.wgmma_rate_fraction(16) == pytest.approx(0.5)

    def test_with_overrides(self):
        c = DEFAULT_CONFIG.with_overrides(num_sms=78)
        assert c.num_sms == 78 and DEFAULT_CONFIG.num_sms == 132
