"""The deterministic fault-injection registry (:mod:`repro.faults`).

Covered here: spec-grammar parsing and validation, matching semantics
(site / worker / cta / nth / match), budget consumption across forked
processes, deterministic probability draws, activation scoping
(``inject_faults`` stack over the ``REPRO_FAULTS`` environment), counter
sync, and the disk-tier quarantine paths the ``cache_read`` /
``cache_write`` kinds exist to exercise.  Recovery of the *sharded
execution* layer from injected faults lives in ``tests/test_parallel.py``
and ``tests/test_fuzz_differential.py``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle

import pytest

from repro import faults
from repro.core.cache import DiskCache
from repro.core.options import CompileOptions
from repro.faults.registry import _deterministic_draw
from repro.gpusim.parallel import fork_available
from repro.perf.counters import COUNTERS
from repro.tune.store import TunedRecord, TuneStore, tuning_key

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires fork()")


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


class TestSpecParsing:
    def test_minimal_spec(self):
        (spec,) = faults.parse_faults("kill")
        assert spec.kind == "kill"
        assert spec.site == "worker"
        assert spec.worker is None and spec.cta is None and spec.nth is None
        assert spec.count == 1 and spec.prob == 1.0

    def test_full_spec(self):
        (spec,) = faults.parse_faults(
            "hang:worker=1,cta=2,nth=0,count=3,prob=0.5,seed=7,seconds=9.5")
        assert spec.kind == "hang"
        assert (spec.worker, spec.cta, spec.nth) == (1, 2, 0)
        assert (spec.count, spec.prob, spec.seed, spec.seconds) == (3, 0.5, 7, 9.5)

    def test_multiple_specs_and_whitespace(self):
        specs = faults.parse_faults(" kill:worker=0 ; pipe ;; cache_read:match=tuned ")
        assert [s.kind for s in specs] == ["kill", "pipe", "cache_read"]
        assert specs[2].match == "tuned"

    def test_unlimited_count_spellings(self):
        assert faults.parse_faults("kill:count=-1")[0].count == -1
        assert faults.parse_faults("kill:count=inf")[0].count == -1

    def test_empty_spec_parses_to_nothing(self):
        assert faults.parse_faults("") == []
        assert faults.parse_faults(" ; ") == []

    @pytest.mark.parametrize("bad", [
        "explode",                    # unknown kind
        "kill:worker",                # missing value
        "kill:worker=",               # empty value
        "kill:shard=1",               # unknown field
        "kill:worker=one",            # non-integer
        "kill:count=0",               # zero budget
        "kill:count=-2",              # invalid negative
        "kill:prob=0",                # prob out of range
        "kill:prob=1.5",
    ])
    def test_malformed_specs_are_rejected(self, bad):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_faults(bad)

    def test_describe_round_trips_the_interesting_fields(self):
        (spec,) = faults.parse_faults("kill:worker=1,cta=0,count=2")
        text = spec.describe()
        assert "kill" in text and "worker=1" in text and "count=2" in text


# ---------------------------------------------------------------------------
# Matching and budgets
# ---------------------------------------------------------------------------


class TestMatching:
    def test_site_and_worker_matching(self):
        with faults.inject_faults("kill:worker=1") as reg:
            assert reg.fire("pipe", worker=1) is None          # wrong site
            assert reg.fire("worker", worker=0) is None        # wrong worker
            spec = reg.fire("worker", worker=1)
            assert spec is not None and spec.kind == "kill"

    def test_wildcard_fields_match_anything(self):
        with faults.inject_faults("kill") as reg:
            assert reg.fire("worker", worker=3, cta=9) is not None

    def test_cta_matching(self):
        with faults.inject_faults("kill:cta=2,count=-1") as reg:
            assert reg.fire("worker", worker=0, cta=0) is None
            assert reg.fire("worker", worker=0, cta=2) is not None

    def test_nth_counts_matching_hits_only(self):
        """nth indexes hits that matched the other constraints."""
        with faults.inject_faults("kill:worker=1,nth=2") as reg:
            for _ in range(5):
                assert reg.fire("worker", worker=0) is None  # never counted
            assert reg.fire("worker", worker=1) is None      # hit 0
            assert reg.fire("worker", worker=1) is None      # hit 1
            assert reg.fire("worker", worker=1) is not None  # hit 2: fires
            assert reg.fire("worker", worker=1) is None      # past nth

    def test_count_budget_is_consumed(self):
        with faults.inject_faults("kill:count=2") as reg:
            assert reg.fire("worker", worker=0) is not None
            assert reg.fire("worker", worker=0) is not None
            assert reg.fire("worker", worker=0) is None
            assert reg.fired_total() == 2
            assert reg.fired_by_kind() == {"kill": 2}

    def test_unlimited_budget_never_exhausts(self):
        with faults.inject_faults("kill:count=-1") as reg:
            for _ in range(10):
                assert reg.fire("worker", worker=0) is not None
            assert reg.fired_total() == 10

    def test_path_match_scopes_cache_faults(self):
        with faults.inject_faults("cache_read:match=tuned,count=-1") as reg:
            assert reg.fire("cache_read", path="/x/compile/abc.pkl") is None
            assert reg.fire("cache_read", path="/x/tuned/abc.json") is not None

    def test_first_matching_spec_wins(self):
        with faults.inject_faults("hang:worker=0;kill:worker=0") as reg:
            spec = reg.fire("worker", worker=0)
            assert spec.kind == "hang"
            spec = reg.fire("worker", worker=0)  # hang's budget is spent
            assert spec.kind == "kill"

    @needs_fork
    def test_budget_is_shared_across_forked_processes(self):
        """A fault consumed inside a child is consumed for the whole tree."""
        with faults.inject_faults("kill:count=1") as reg:

            def child():
                fired = reg.fire("worker", worker=0)
                os._exit(0 if fired is not None else 1)

            proc = mp.get_context("fork").Process(target=child)
            proc.start()
            proc.join()
            assert proc.exitcode == 0          # the child's hit fired...
            assert reg.fired_total() == 1      # ...and the parent sees it
            assert reg.fire("worker", worker=0) is None  # budget is gone


class TestDeterministicProbability:
    def test_draws_are_stable_across_calls(self):
        draws = [_deterministic_draw(7, i, 0.5) for i in range(64)]
        assert draws == [_deterministic_draw(7, i, 0.5) for i in range(64)]
        assert any(draws) and not all(draws)  # prob=0.5 actually splits

    def test_seed_changes_the_pattern(self):
        a = [_deterministic_draw(1, i, 0.5) for i in range(64)]
        b = [_deterministic_draw(2, i, 0.5) for i in range(64)]
        assert a != b

    def test_prob_one_always_fires(self):
        assert all(_deterministic_draw(0, i, 1.0) for i in range(16))

    def test_registry_prob_is_reproducible(self):
        def run():
            with faults.inject_faults("kill:prob=0.5,seed=3,count=-1") as reg:
                return [reg.fire("worker", worker=0) is not None
                        for _ in range(32)]

        first = run()
        assert first == run()
        assert any(first) and not all(first)


# ---------------------------------------------------------------------------
# Activation scoping and counter sync
# ---------------------------------------------------------------------------


class TestScoping:
    def test_no_registry_means_no_fires(self):
        assert faults.active_registry() is None
        assert faults.fire("worker", worker=0) is None

    def test_inject_faults_scopes_and_restores(self):
        assert faults.active_registry() is None
        with faults.inject_faults("kill") as reg:
            assert faults.active_registry() is reg
            with faults.inject_faults("pipe") as inner:
                assert faults.active_registry() is inner
            assert faults.active_registry() is reg
        assert faults.active_registry() is None

    def test_env_registry_activates_and_caches(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "kill:worker=0")
        reg = faults.active_registry()
        assert reg is not None and reg.specs[0].kind == "kill"
        assert faults.active_registry() is reg  # same raw value -> same registry
        monkeypatch.setenv(faults.FAULTS_ENV, "pipe")
        reg2 = faults.active_registry()
        assert reg2 is not reg and reg2.specs[0].kind == "pipe"
        monkeypatch.delenv(faults.FAULTS_ENV)
        assert faults.active_registry() is None

    def test_inject_shadows_the_environment(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "kill")
        with faults.inject_faults("pipe") as reg:
            assert faults.active_registry() is reg
        assert faults.active_registry().specs[0].kind == "kill"
        monkeypatch.delenv(faults.FAULTS_ENV)

    def test_fires_are_synced_into_sim_counters(self):
        assert COUNTERS.faults_injected == 0
        with faults.inject_faults("kill:count=2") as reg:
            reg.fire("worker", worker=0)
            reg.fire("worker", worker=0)
        assert COUNTERS.faults_injected == 2

    def test_sync_is_incremental_not_double_counted(self):
        with faults.inject_faults("kill:count=3") as reg:
            reg.fire("worker", worker=0)
            assert COUNTERS.faults_injected == 1
            faults.sync_fired()
            faults.sync_fired()
            assert COUNTERS.faults_injected == 1
            reg.fire("worker", worker=0)
        assert COUNTERS.faults_injected == 2


# ---------------------------------------------------------------------------
# Disk-tier quarantine (cache_read / cache_write faults)
# ---------------------------------------------------------------------------


def _store_entry(cache: DiskCache, key: str) -> None:
    assert cache.store(key, {"payload": 123})


class TestCompileCacheQuarantine:
    def test_injected_read_failure_quarantines_the_entry(self, tmp_path):
        cache = DiskCache(tmp_path)
        _store_entry(cache, "k1")
        with faults.inject_faults("cache_read"):
            assert cache.load("k1") is None
        assert COUNTERS.compile_disk_errors == 1
        assert COUNTERS.compile_disk_quarantined == 1
        assert not cache.path_for("k1").exists()
        corrupt = tmp_path / "k1.pkl.corrupt"
        assert corrupt.exists()
        # the evidence survives intact -- and never matches a *.pkl glob
        assert pickle.loads(corrupt.read_bytes())["payload"] == 123
        assert list(tmp_path.glob("*.pkl")) == []
        # subsequent loads are plain misses, not repeated quarantines
        assert cache.load("k1") is None
        assert COUNTERS.compile_disk_quarantined == 1

    def test_injected_write_failure_is_swallowed(self, tmp_path):
        cache = DiskCache(tmp_path)
        with faults.inject_faults("cache_write"):
            assert cache.store("k1", {"payload": 1}) is False
        assert COUNTERS.compile_disk_errors == 1
        assert COUNTERS.compile_disk_writes == 0
        assert not cache.path_for("k1").exists()
        # the tier still works afterwards
        _store_entry(cache, "k1")
        assert cache.load("k1")["payload"] == 123

    def test_truncated_entry_is_quarantined(self, tmp_path):
        cache = DiskCache(tmp_path)
        _store_entry(cache, "k1")
        path = cache.path_for("k1")
        path.write_bytes(path.read_bytes()[:10])  # simulate a partial write
        assert cache.load("k1") is None
        assert COUNTERS.compile_disk_quarantined == 1
        assert (tmp_path / "k1.pkl.corrupt").exists()


def _tuned_record(key: str) -> TunedRecord:
    return TunedRecord(key=key, workload="gemm", options=CompileOptions(),
                       problem_overrides=(), measured_tflops=1.0,
                       default_tflops=0.5, predicted_tflops=0.9,
                       measurements=3)


class TestTuneStoreQuarantine:
    def _key(self):
        from repro.gpusim.config import DEFAULT_CONFIG

        return tuning_key(["abc"], int, DEFAULT_CONFIG)

    def test_injected_read_failure_quarantines_the_entry(self, tmp_path):
        store = TuneStore(tmp_path)
        key = self._key()
        assert store.store(_tuned_record(key))
        with faults.inject_faults("cache_read"):
            assert store.load(key) is None
        assert COUNTERS.tune_store_quarantined == 1
        assert COUNTERS.tune_store_misses == 1
        assert not store.path_for(key).exists()
        assert (tmp_path / f"{key}.json.corrupt").exists()
        assert list(tmp_path.glob("*.json")) == []
        # a re-tune can repopulate the slot
        assert store.store(_tuned_record(key))
        assert store.load(key).measured_tflops == 1.0

    def test_injected_write_failure_is_swallowed(self, tmp_path):
        store = TuneStore(tmp_path)
        key = self._key()
        with faults.inject_faults("cache_write"):
            assert store.store(_tuned_record(key)) is False
        assert not store.path_for(key).exists()

    def test_corrupt_json_is_quarantined(self, tmp_path):
        store = TuneStore(tmp_path)
        key = self._key()
        assert store.store(_tuned_record(key))
        store.path_for(key).write_text("{not json", encoding="utf-8")
        assert store.load(key) is None
        assert COUNTERS.tune_store_quarantined == 1
        assert (tmp_path / f"{key}.json.corrupt").exists()

    def test_match_field_scopes_faults_to_one_tier(self, tmp_path):
        """match= lets a chaos run fault only the tune store."""
        compile_dir = tmp_path / "compile"
        tune_dir = tmp_path / "tuned"
        cache = DiskCache(compile_dir)
        store = TuneStore(tune_dir)
        key = self._key()
        _store_entry(cache, "k1")
        assert store.store(_tuned_record(key))
        with faults.inject_faults("cache_read:match=tuned,count=-1"):
            assert cache.load("k1")["payload"] == 123   # untouched
            assert store.load(key) is None              # faulted
        assert COUNTERS.compile_disk_quarantined == 0
        assert COUNTERS.tune_store_quarantined == 1
