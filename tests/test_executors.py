"""Executor-layer tests: strategy selection, launch-prep parity, pipelining.

The PR-5 refactor extracted the serial / sharded launch paths out of
``Device`` into :mod:`repro.gpusim.executors` behind one ``prepare`` /
``run`` / ``submit`` protocol.  These tests pin the properties the
extraction must preserve:

* ``Device.launch`` and ``Device.run_many`` share one launch-prep
  implementation (they used to carry clones), so the same spec produces
  identical results *and identical counter deltas* through both paths;
* executor selection follows ``(mode, workers, collect_trace)``;
* the pipelined batch driver is result-identical to one-at-a-time launches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.options import CompileOptions
from repro.gpusim import executors
from repro.gpusim.device import Device, LaunchSpec, clear_compile_cache
from repro.gpusim.engine import SimulationError
from repro.gpusim.executors import (
    ExecutorSettings,
    InflightLaunch,
    SerialExecutor,
    ShardedExecutor,
    select_executor,
)
from repro.gpusim.launch import PreparedLaunch
from repro.kernels.gemm import GemmProblem, make_gemm_inputs, matmul_kernel
from repro.perf.counters import COUNTERS, sim_counters


def _gemm_spec(device: Device, problem: GemmProblem) -> LaunchSpec:
    args, _, _ = make_gemm_inputs(problem, device)
    return LaunchSpec(matmul_kernel, problem.grid, args, problem.constexprs(),
                      CompileOptions(enable_warp_specialization=True,
                                     aref_depth=2, mma_pipeline_depth=2),
                      problem.flops)


#: Counter fields that must match exactly between the two launch paths.
_PARITY_COUNTERS = (
    "compile_cache_hits", "compile_cache_misses", "plan_cache_hits",
    "plan_cache_misses", "plan_ctas", "interpreter_ctas", "engine_events",
)


class TestLaunchPrepParity:
    """Regression: launch and run_many share one launch-prep implementation."""

    @pytest.mark.parametrize("use_plans", [True, False])
    def test_identical_results_and_counters_for_same_spec(self, use_plans,
                                                          small_gemm):
        deltas = {}
        outputs = {}
        for path in ("launch", "run_many"):
            clear_compile_cache()
            COUNTERS.reset()
            device = Device(mode="functional", use_plans=use_plans)
            spec = _gemm_spec(device, small_gemm)
            if path == "launch":
                compiled = device.compile(spec.kernel, spec.args,
                                          spec.constexprs, spec.options)
                result = device.launch(compiled, spec.grid, spec.args,
                                       flops=spec.flops)
            else:
                [result] = device.run_many([spec])
            deltas[path] = sim_counters()
            outputs[path] = (result.cycles, tuple(result.per_cta_cycles),
                             result.tensor_core_busy_cycles,
                             result.bytes_copied, result.total_ctas,
                             spec.args["c_ptr"].buffer.to_numpy().copy())

        a, b = outputs["launch"], outputs["run_many"]
        assert a[:5] == b[:5]
        np.testing.assert_array_equal(a[5], b[5])
        for name in _PARITY_COUNTERS:
            assert deltas["launch"][name] == deltas["run_many"][name], name

    def test_prepare_is_shared_single_implementation(self):
        """Both public paths go through ExecutorBase.prepare -- the façade
        keeps no prep/orchestration bodies of its own."""
        for attr in ("_prepare", "_share_launch_buffers", "_release_launch_buffers",
                     "_effective_workers", "_execute_serial", "_run_one_cta"):
            assert not hasattr(Device, attr), attr
        for attr in ("prepare", "finalize", "run", "submit"):
            assert hasattr(executors.ExecutorBase, attr), attr


class TestSelection:
    def _settings(self, **kw) -> ExecutorSettings:
        defaults = dict(config=Device().config, mode="functional",
                        max_ctas_per_sm_simulated=8, collect_trace=False,
                        use_plans=True, workers=1)
        defaults.update(kw)
        return ExecutorSettings(**defaults)

    def test_serial_by_default(self):
        assert isinstance(select_executor(self._settings()), SerialExecutor)
        assert not isinstance(select_executor(self._settings()), ShardedExecutor)

    def test_sharded_for_functional_multi_worker(self):
        ex = select_executor(self._settings(workers=4))
        assert isinstance(ex, ShardedExecutor)

    def test_performance_mode_never_shards(self):
        ex = select_executor(self._settings(mode="performance", workers=4))
        assert not isinstance(ex, ShardedExecutor)

    def test_trace_collection_never_shards(self):
        ex = select_executor(self._settings(workers=4, collect_trace=True))
        assert not isinstance(ex, ShardedExecutor)

    def test_device_reselects_on_attribute_change(self):
        device = Device(mode="functional", workers=4)
        assert isinstance(device.executor(), ShardedExecutor)
        device.workers = 1
        assert not isinstance(device.executor(), ShardedExecutor)


class TestShardedFallback:
    def test_single_cta_launch_runs_serially(self):
        """A one-CTA launch never forks even on a sharded executor."""
        device = Device(mode="functional", workers=4)
        one_cta = GemmProblem(M=32, N=32, K=32, block_m=32, block_n=32,
                              block_k=32)
        spec = _gemm_spec(device, one_cta)
        assert spec.grid == 1
        [result] = device.run_many([spec])
        assert result.total_ctas == 1
        assert COUNTERS.parallel_launches == 0
        assert COUNTERS.parallel_workers_forked == 0

    def test_sharded_executor_effective_workers_cap(self, small_gemm):
        device = Device(mode="functional", workers=16)
        executor = device.executor()
        assert isinstance(executor, ShardedExecutor)
        prepared = executor.prepare(_gemm_spec(device, small_gemm))
        assert isinstance(prepared, PreparedLaunch)
        assert executor.effective_workers(prepared) <= len(prepared.cta_ids)


class TestPipelinedBatch:
    def test_run_pipelined_matches_sequential_runs(self, small_gemm, tiny_gemm):
        device = Device(mode="functional")
        specs = [_gemm_spec(device, small_gemm), _gemm_spec(device, tiny_gemm)]
        batched = device.run_many(specs)

        clear_compile_cache()
        device2 = Device(mode="functional")
        specs2 = [_gemm_spec(device2, small_gemm), _gemm_spec(device2, tiny_gemm)]
        solo = [device2.run(s.kernel, s.grid, s.args, s.constexprs, s.options,
                            s.flops) for s in specs2]

        for got, want in zip(batched, solo):
            assert got.cycles == want.cycles
            assert got.per_cta_cycles == want.per_cta_cycles

    def test_submit_contract(self, tiny_gemm):
        """Serial submissions complete synchronously (done=True)."""
        device = Device(mode="functional", workers=1)
        executor = device.executor()
        prepared = executor.prepare(_gemm_spec(device, tiny_gemm))
        inflight = executor.submit(prepared)
        assert inflight.done
        assert inflight.collect().total_ctas == 4

    def test_uncollected_launch_cannot_escape_as_none(self, tiny_gemm):
        """Regression: a collect() that produces no result must raise.

        ``run_pipelined`` is typed to return ``List[LaunchResult]``; before
        the guard, an executor whose in-flight handle yielded ``None`` let
        that ``None`` escape into callers (``Device.run_many`` users index
        into the list and call attributes on the entries) typed as a result.
        """

        class _NoResultInflight(InflightLaunch):
            def __init__(self):
                super().__init__(None)

            @property
            def done(self):
                return False

            def collect(self):
                return None

        class _NoResultExecutor(SerialExecutor):
            def submit(self, prepared):
                return _NoResultInflight()

        device = Device(mode="functional", workers=1)
        broken = _NoResultExecutor(device.executor_settings())
        spec = _gemm_spec(device, tiny_gemm)
        with pytest.raises(SimulationError, match="uncollected"):
            executors.run_pipelined(broken, [spec])
