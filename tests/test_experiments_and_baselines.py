"""Tests for the analytic baseline models, the perf helpers and the figure harnesses."""

import pytest

from repro.baselines import analytic
from repro.gpusim.config import DEFAULT_CONFIG
from repro.perf.metrics import FigureResult, tflops
from repro.perf.report import render_table


class TestAnalyticModels:
    def test_large_gemm_is_compute_bound_at_expected_efficiency(self):
        flops = 2.0 * 8192 * 8192 * 16384
        bytes_moved = (8192 + 8192) * 16384 * 2 + 8192 * 8192 * 2
        value = analytic.CUBLAS_GEMM.tflops(flops, bytes_moved, "f16")
        assert value == pytest.approx(0.80 * DEFAULT_CONFIG.peak_tflops(16), rel=0.05)

    def test_small_gemm_is_slower_than_large_gemm(self):
        small_flops = 2.0 * 8192 * 8192 * 256
        small_bytes = (8192 + 8192) * 256 * 2 + 8192 * 8192 * 2
        large_flops = 2.0 * 8192 * 8192 * 16384
        large_bytes = (8192 + 8192) * 16384 * 2 + 8192 * 8192 * 2
        small = analytic.CUBLAS_GEMM.tflops(small_flops, small_bytes, "f16")
        large = analytic.CUBLAS_GEMM.tflops(large_flops, large_bytes, "f16")
        assert small < 0.85 * large

    def test_fp8_peaks_higher_than_fp16(self):
        flops = 2.0 * 8192 * 8192 * 16384
        fp16 = analytic.CUBLAS_GEMM.tflops(flops, 1e9, "f16")
        fp8 = analytic.CUBLAS_GEMM.tflops(flops, 1e9, "f8e4m3")
        assert fp8 > fp16 * 1.5

    def test_thunderkittens_has_no_fp8_attention(self):
        assert analytic.THUNDERKITTENS_ATTENTION.tflops(1e12, 1e9, "f8e4m3") is None
        assert analytic.THUNDERKITTENS_ATTENTION.tflops(1e12, 1e9, "f16") is not None

    def test_theoretical_peaks(self):
        assert analytic.theoretical_peak_tflops("f16") == pytest.approx(989, rel=0.02)
        assert analytic.theoretical_peak_tflops("f8e4m3") == pytest.approx(1979, rel=0.02)

    def test_byte_accounting_scales_with_dtype(self):
        from repro.kernels.gemm import GemmProblem

        fp16 = GemmProblem(M=1024, N=1024, K=1024, dtype="f16")
        fp8 = GemmProblem(M=1024, N=1024, K=1024, dtype="f8e4m3")
        assert fp8.bytes_moved < fp16.bytes_moved


class TestFigureResult:
    def _fig(self):
        fig = FigureResult("figX", "demo", "K")
        fig.add("Tawa", 1024, 500.0)
        fig.add("Triton", 1024, 400.0)
        fig.add("Tawa", 2048, 600.0)
        fig.add("Triton", 2048, 480.0)
        return fig

    def test_series_and_values(self):
        fig = self._fig()
        assert fig.series_names == ["Tawa", "Triton"]
        assert fig.x_values == [1024, 2048]
        assert fig.value("Tawa", 2048) == 600.0
        assert fig.value("missing", 1) is None

    def test_speedups_and_geomean(self):
        fig = self._fig()
        assert fig.speedup("Tawa", "Triton") == [pytest.approx(1.25), pytest.approx(1.25)]
        assert fig.geomean_speedup("Tawa", "Triton") == pytest.approx(1.25)
        assert fig.geomean_speedup("Tawa", "missing") is None

    def test_render_contains_all_series(self):
        text = self._fig().render()
        assert "Tawa" in text and "Triton" in text and "1024" in text

    def test_render_table_alignment(self):
        text = render_table(["a", "bbbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(set(len(l) for l in lines)) == 1  # all rows padded equally

    def test_tflops_helper(self):
        assert tflops(1e12, 1.0) == pytest.approx(1.0)
        assert tflops(1e12, 0.0) == 0.0


class TestExperimentHarnesses:
    @pytest.fixture(scope="class")
    def reduced_results(self):
        from repro.experiments import run_all

        return run_all(full=False)

    def test_all_figures_produced(self, reduced_results):
        assert set(reduced_results) == {"fig8", "fig9", "fig10", "fig11", "fig12"}
        for figs in reduced_results.values():
            assert figs and all(isinstance(f, FigureResult) for f in figs)

    def test_fig8_series_complete(self, reduced_results):
        fig = reduced_results["fig8"][0]
        assert {"Theoretical Peak", "cuBLAS", "Tawa", "Triton", "TileLang",
                "ThunderKittens"} <= set(fig.series_names)
        assert all(row.tflops > 0 for row in fig.rows)

    def test_fig8_shape_tawa_vs_triton_and_peak(self, reduced_results):
        fig = reduced_results["fig8"][0]
        largest_k = max(fig.x_values)
        assert fig.value("Tawa", largest_k) > fig.value("Triton", largest_k)
        assert fig.value("Tawa", largest_k) < fig.value("Theoretical Peak", largest_k)
        # cuBLAS wins at the smallest K (launch overheads dominate Tawa there).
        smallest_k = min(fig.x_values)
        assert fig.value("cuBLAS", smallest_k) > fig.value("Tawa", smallest_k)

    def test_fig9_tawa_beats_triton_everywhere(self, reduced_results):
        for fig in reduced_results["fig9"]:
            for x in fig.x_values:
                assert fig.value("Tawa", x) > fig.value("Triton", x)

    def test_fig10_tawa_between_triton_and_fa3(self, reduced_results):
        fig = reduced_results["fig10"][0]
        largest = max(fig.x_values)
        assert fig.value("Triton", largest) < fig.value("Tawa", largest)
        assert fig.value("Tawa", largest) <= fig.value("FA3 (CUTLASS)", largest) * 1.05

    def test_fig11_feasible_region_and_monotonic_depth(self, reduced_results):
        for fig in reduced_results["fig11"]:
            assert fig.value("D=1", 2) == 0.0  # P > D is infeasible
            assert fig.value("D=1", 3) == 0.0
            assert fig.value("D=2", 3) == 0.0
            assert fig.value("D=3", 2) > fig.value("D=2", 2) > 0
            assert fig.value("D=2", 1) > fig.value("D=1", 1)

    def test_fig11_persistent_beats_nonpersistent(self, reduced_results):
        nonp, pers = reduced_results["fig11"]
        assert pers.value("D=3", 2) > nonp.value("D=3", 2)

    def test_fig12_ablation_is_monotonically_non_decreasing(self, reduced_results):
        for fig in reduced_results["fig12"]:
            values = [row.tflops for row in fig.rows]
            assert all(b >= a * 0.98 for a, b in zip(values, values[1:]))
            assert values[-1] > values[0] * 3  # the full stack is a large win

    def test_fig12_render_ablation_lists_steps(self, reduced_results):
        from repro.experiments.fig12_ablation import render_ablation

        text = render_ablation(reduced_results["fig12"][0])
        assert "+Auto WS" in text and "+Persistent Kernel" in text
