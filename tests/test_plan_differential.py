"""Differential regression tests: execution plans vs. the IR interpreter.

The plan compiler (:mod:`repro.gpusim.plan`) must be *observationally
indistinguishable* from the interpreter it replaces: identical simulated cycle
counts (bit-exact -- the DelayChain batching replays the same float additions)
and identical functional outputs, across every compilation path and across the
reduced-range fig8--fig12 experiment configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.options import CompileOptions, NAIVE_OPTIONS, TRITON_BASELINE_OPTIONS
from repro.gpusim.device import Device
from repro.gpusim.plan import compile_plan
from repro.kernels.attention import AttentionProblem, run_attention
from repro.kernels.batched_gemm import BatchedGemmProblem, run_batched_gemm
from repro.kernels.gemm import GemmProblem, run_gemm
from repro.kernels.grouped_gemm import GroupedGemmProblem, run_grouped_gemm
from repro.perf.counters import COUNTERS


def device_pair(mode: str, **kwargs):
    return (Device(mode=mode, use_plans=False, **kwargs),
            Device(mode=mode, use_plans=True, **kwargs))


GEMM_OPTION_CASES = [
    ("warp_specialized", CompileOptions(enable_warp_specialization=True,
                                        aref_depth=3, mma_pipeline_depth=2,
                                        num_consumer_groups=2)),
    ("warp_specialized_persistent", CompileOptions(enable_warp_specialization=True,
                                                   aref_depth=3, mma_pipeline_depth=2,
                                                   num_consumer_groups=2,
                                                   persistent=True)),
    ("triton_baseline", TRITON_BASELINE_OPTIONS),
    ("naive", NAIVE_OPTIONS),
    ("frontend_tt", CompileOptions(lower_to="tt")),
    ("midlevel_tawa", CompileOptions(lower_to="tawa")),
]


class TestFunctionalDifferential:
    """Functional mode: outputs and cycle counts must match exactly."""

    @pytest.mark.parametrize("name,options", GEMM_OPTION_CASES,
                             ids=[c[0] for c in GEMM_OPTION_CASES])
    def test_gemm_all_paths(self, name, options):
        problem = GemmProblem(M=256, N=256, K=128, block_m=64, block_n=64,
                              block_k=32)
        interp, plan = device_pair("functional")
        r_i, c_i = run_gemm(interp, problem, options)
        r_p, c_p = run_gemm(plan, problem, options)
        assert r_p.cycles == r_i.cycles
        assert r_p.tensor_core_utilization == r_i.tensor_core_utilization
        assert np.array_equal(c_p, c_i)

    @pytest.mark.parametrize("causal", [False, True])
    def test_attention(self, causal):
        problem = AttentionProblem(batch=1, heads=2, seq_len=128, head_dim=64,
                                   block_m=64, block_n=64, causal=causal)
        options = CompileOptions(enable_warp_specialization=True, aref_depth=2,
                                 mma_pipeline_depth=2, num_consumer_groups=2,
                                 coarse_grained_pipelining=True)
        interp, plan = device_pair("functional")
        r_i, o_i = run_attention(interp, problem, options)
        r_p, o_p = run_attention(plan, problem, options)
        assert r_p.cycles == r_i.cycles
        assert np.array_equal(o_p, o_i)

    def test_batched_gemm(self):
        problem = BatchedGemmProblem(batch=2, M=128, N=128, K=64, block_m=64,
                                     block_n=64, block_k=32)
        interp, plan = device_pair("functional")
        r_i, c_i = run_batched_gemm(interp, problem, CompileOptions())
        r_p, c_p = run_batched_gemm(plan, problem, CompileOptions())
        assert r_p.cycles == r_i.cycles
        assert np.array_equal(c_p, c_i)

    def test_grouped_gemm(self):
        problem = GroupedGemmProblem(group_ms=[128, 192], N=128, K=64,
                                     block_m=64, block_n=64, block_k=32)
        interp, plan = device_pair("functional")
        r_i, c_i = run_grouped_gemm(interp, problem, CompileOptions())
        r_p, c_p = run_grouped_gemm(plan, problem, CompileOptions())
        assert r_p.cycles == r_i.cycles
        assert np.array_equal(c_p, c_i)

    def test_per_cta_cycles_match(self):
        """Every simulated CTA, not just the aggregate, must agree."""
        problem = GemmProblem(M=256, N=128, K=128, block_m=64, block_n=64,
                              block_k=32)
        interp, plan = device_pair("functional")
        r_i, _ = run_gemm(interp, problem, CompileOptions())
        r_p, _ = run_gemm(plan, problem, CompileOptions())
        assert r_p.per_cta_cycles == r_i.per_cta_cycles


class TestCodegenDifferential:
    """Vectorized codegen vs. plans: bit-identical across every compile path.

    Warp-specialized (multi-region) kernels are not vectorizable; for those
    the codegen device must transparently fall back to plans -- counted by
    ``codegen_fallback_launches`` -- and still agree bit for bit.
    """

    @pytest.mark.parametrize("name,options", GEMM_OPTION_CASES,
                             ids=[c[0] for c in GEMM_OPTION_CASES])
    def test_gemm_all_paths(self, name, options):
        problem = GemmProblem(M=256, N=256, K=128, block_m=64, block_n=64,
                              block_k=32)
        plan = Device(mode="functional", use_plans=True)
        gen = Device(mode="functional", use_plans=True, codegen=True)
        r_p, c_p = run_gemm(plan, problem, options)
        r_c, c_c = run_gemm(gen, problem, options)
        assert r_c.cycles == r_p.cycles
        assert r_c.per_cta_cycles == r_p.per_cta_cycles
        assert r_c.tensor_core_utilization == r_p.tensor_core_utilization
        assert np.array_equal(c_c, c_p)

    def test_single_region_gemm_uses_the_batch_call(self):
        problem = GemmProblem(M=128, N=128, K=64, block_m=32, block_n=32,
                              block_k=32)
        launches = COUNTERS.codegen_launches
        fallbacks = COUNTERS.codegen_fallback_launches
        run_gemm(Device(codegen=True), problem, NAIVE_OPTIONS)
        assert COUNTERS.codegen_launches == launches + 1
        assert COUNTERS.codegen_fallback_launches == fallbacks

    def test_warp_specialized_gemm_falls_back(self):
        problem = GemmProblem(M=128, N=128, K=64, block_m=32, block_n=32,
                              block_k=32)
        options = GEMM_OPTION_CASES[0][1]
        launches = COUNTERS.codegen_launches
        fallbacks = COUNTERS.codegen_fallback_launches
        run_gemm(Device(codegen=True), problem, options)
        assert COUNTERS.codegen_launches == launches
        assert COUNTERS.codegen_fallback_launches == fallbacks + 1

    @pytest.mark.parametrize("fig", ["fig8_gemm", "fig9_gemm_variants",
                                     "fig10_attention", "fig11_hyperparams",
                                     "fig12_ablation"])
    def test_figure_rows_identical(self, fig):
        import importlib

        mod = importlib.import_module(f"repro.experiments.{fig}")
        plan = Device(mode="performance", max_ctas_per_sm_simulated=2)
        gen = Device(mode="performance", max_ctas_per_sm_simulated=2,
                     codegen=True)
        figs_p = mod.run(full=False, device=plan)
        figs_c = mod.run(full=False, device=gen)
        assert len(figs_p) == len(figs_c)
        for f_p, f_c in zip(figs_p, figs_c):
            rows_p = [(r.series, r.x, r.tflops) for r in f_p.rows]
            rows_c = [(r.series, r.x, r.tflops) for r in f_c.rows]
            assert rows_c == rows_p


class TestPerformanceDifferential:
    """Performance mode over the reduced fig8-fig12 configurations."""

    @pytest.mark.parametrize("fig", ["fig8_gemm", "fig9_gemm_variants",
                                     "fig10_attention", "fig11_hyperparams",
                                     "fig12_ablation"])
    def test_figure_rows_identical(self, fig):
        import importlib

        mod = importlib.import_module(f"repro.experiments.{fig}")
        interp, plan = device_pair("performance", max_ctas_per_sm_simulated=2)
        figs_i = mod.run(full=False, device=interp)
        figs_p = mod.run(full=False, device=plan)
        assert len(figs_i) == len(figs_p)
        for f_i, f_p in zip(figs_i, figs_p):
            rows_i = [(r.series, r.x, r.tflops) for r in f_i.rows]
            rows_p = [(r.series, r.x, r.tflops) for r in f_p.rows]
            assert rows_p == rows_i


class TestPlanInfrastructure:
    def test_plan_is_cached_per_kernel(self):
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        device = Device(mode="functional", use_plans=True)
        before = COUNTERS.plan_cache_misses
        run_gemm(device, problem, CompileOptions())
        first_misses = COUNTERS.plan_cache_misses - before
        assert first_misses <= 1  # one build for the whole grid
        before_hits = COUNTERS.plan_cache_hits
        run_gemm(device, problem, CompileOptions())
        assert COUNTERS.plan_cache_hits > before_hits  # relaunch reuses it

    def test_compile_cache_is_process_wide(self):
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        run_gemm(Device(mode="functional"), problem, CompileOptions())
        before = COUNTERS.compile_cache_hits
        # A *fresh* device (what every experiment harness builds) must hit.
        run_gemm(Device(mode="functional"), problem, CompileOptions())
        assert COUNTERS.compile_cache_hits > before

    def test_env_flag_disables_plans(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_PLANS", "0")
        assert Device(mode="functional").use_plans is False
        monkeypatch.setenv("REPRO_SIM_PLANS", "1")
        assert Device(mode="functional").use_plans is True

    def test_plan_compiles_both_modes(self):
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        device = Device(mode="functional")
        from repro.kernels.gemm import make_gemm_inputs, matmul_kernel

        args, _, _ = make_gemm_inputs(problem, device)
        compiled = device.compile(matmul_kernel, args, problem.constexprs(),
                                  CompileOptions())
        for functional in (True, False):
            plan = compile_plan(compiled.func, device.config, functional)
            assert plan.regions
        # Warp-specialized consumer replicas get an observer variant.
        compiled_ws = device.compile(
            matmul_kernel, args, problem.constexprs(),
            CompileOptions(enable_warp_specialization=True,
                           num_consumer_groups=2))
        plan = compile_plan(compiled_ws.func, device.config, True)
        consumers = [r for r in plan.regions if r.role == "consumer"]
        assert consumers and all(r.observer_steps is not None for r in consumers)
