"""Unit tests for operations, blocks, regions, use lists and cloning."""

import pytest

from repro.ir import Block, Builder, FuncOp, IRError, IRMapping, ReturnOp
from repro.ir.dialects import arith, scf, tt, ensure_loaded
from repro.ir.types import FunctionType, TensorDescType, f16, i32

ensure_loaded()


def _empty_func(name="f", args=()):
    fn = FuncOp(name, FunctionType(tuple(args), ()))
    return fn


class TestUseDef:
    def test_results_track_uses(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c1 = b.create(arith.ConstantOp, 1, i32)
        c2 = b.create(arith.ConstantOp, 2, i32)
        add = b.create(arith.AddIOp, c1.result, c2.result)
        assert add in c1.result.users
        assert add in c2.result.users
        assert c1.result.has_uses

    def test_replace_all_uses_with(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c1 = b.create(arith.ConstantOp, 1, i32)
        c2 = b.create(arith.ConstantOp, 2, i32)
        add = b.create(arith.AddIOp, c1.result, c2.result)
        c3 = b.create(arith.ConstantOp, 3, i32)
        c1.result.replace_all_uses_with(c3.result)
        assert add.operands[0] is c3.result
        assert not c1.result.has_uses
        assert add in c3.result.users

    def test_set_operand_updates_use_lists(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c1 = b.create(arith.ConstantOp, 1, i32)
        c2 = b.create(arith.ConstantOp, 2, i32)
        add = b.create(arith.AddIOp, c1.result, c1.result)
        add.set_operand(1, c2.result)
        assert add.operands == [c1.result, c2.result]
        assert len(c1.result.uses) == 1

    def test_erase_refuses_when_still_used(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c1 = b.create(arith.ConstantOp, 1, i32)
        b.create(arith.AddIOp, c1.result, c1.result)
        with pytest.raises(IRError, match="still used"):
            c1.erase()

    def test_erase_unused_op(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c1 = b.create(arith.ConstantOp, 1, i32)
        c1.erase()
        assert c1 not in fn.body.operations


class TestStructure:
    def test_parent_links(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c0 = arith.c_i32(b, 0)
        c4 = arith.c_i32(b, 4)
        c1 = arith.c_i32(b, 1)
        loop = b.create(scf.ForOp, c0, c4, c1, [])
        assert loop.parent is fn.body
        assert loop.body.parent_op is loop
        assert loop.parent_op is fn

    def test_is_ancestor_of(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c0 = arith.c_i32(b, 0)
        loop = b.create(scf.ForOp, c0, c0, c0, [])
        with b.at(loop.body):
            inner = arith.c_i32(b, 7)
        assert fn.is_ancestor_of(inner.defining_op)
        assert loop.is_ancestor_of(inner.defining_op)
        assert not inner.defining_op.is_ancestor_of(loop)

    def test_move_before_and_after(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c1 = b.create(arith.ConstantOp, 1, i32)
        c2 = b.create(arith.ConstantOp, 2, i32)
        c2.move_before(c1)
        assert fn.body.operations.index(c2) < fn.body.operations.index(c1)
        c2.move_after(c1)
        assert fn.body.operations.index(c2) > fn.body.operations.index(c1)

    def test_walk_visits_nested_ops(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c0 = arith.c_i32(b, 0)
        loop = b.create(scf.ForOp, c0, c0, c0, [])
        with b.at(loop.body):
            arith.c_i32(b, 5)
            b.create(scf.YieldOp, [])
        names = [op.name for op in fn.walk()]
        assert "scf.for" in names
        assert names.count("arith.constant") == 2


class TestCloning:
    def test_clone_remaps_operands(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c1 = b.create(arith.ConstantOp, 1, i32)
        add = b.create(arith.AddIOp, c1.result, c1.result)
        c9 = b.create(arith.ConstantOp, 9, i32)
        mapping = IRMapping({c1.result: c9.result})
        clone = add.clone(mapping)
        assert clone.operands == [c9.result, c9.result]
        assert mapping.lookup(add.result) is clone.result

    def test_clone_loop_recreates_block_args(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c0 = arith.c_i32(b, 0)
        c8 = arith.c_i32(b, 8)
        c1 = arith.c_i32(b, 1)
        acc0 = arith.c_i32(b, 0)
        loop = b.create(scf.ForOp, c0, c8, c1, [acc0])
        with b.at(loop.body):
            nxt = b.create(arith.AddIOp, loop.iter_args[0], loop.induction_var)
            b.create(scf.YieldOp, [nxt.result])
        clone = loop.clone(IRMapping())
        assert isinstance(clone, scf.ForOp)
        assert len(clone.body.arguments) == 2
        assert clone.body.arguments[0] is not loop.body.arguments[0]
        # Cloned body references its own block arguments, not the original's.
        cloned_add = clone.body.operations[0]
        assert cloned_add.operands[0] is clone.iter_args[0]

    def test_clone_preserves_attributes(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c = b.create(arith.ConstantOp, 42, i32)
        c.set_attr("custom", "tag")
        clone = c.clone()
        assert clone.attributes["value"] == 42
        assert clone.attributes["custom"] == "tag"

    def test_function_clone_is_verifiable(self):
        from repro.ir import verify

        fn = _empty_func(args=(TensorDescType(f16), i32))
        b = Builder(fn.body)
        tile = b.create(tt.TmaLoadOp, fn.argument(0), [fn.argument(1), fn.argument(1)], (16, 16))
        b.create(tt.TransOp, tile.result)
        b.create(ReturnOp)
        clone = fn.clone()
        verify(clone)
        assert clone is not fn


class TestBuilderInsertion:
    def test_insertion_points(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c1 = b.create(arith.ConstantOp, 1, i32)
        b.create(arith.ConstantOp, 3, i32)
        b.set_insertion_point_after(c1)
        b.create(arith.ConstantOp, 2, i32)
        values = [op.attributes["value"] for op in fn.body.operations]
        assert values == [1, 2, 3]

    def test_at_context_manager_restores(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c0 = arith.c_i32(b, 0)
        loop = b.create(scf.ForOp, c0, c0, c0, [])
        with b.at(loop.body):
            assert b.block is loop.body
        assert b.block is fn.body

    def test_block_insert_rejects_reinsertion(self):
        fn = _empty_func()
        b = Builder(fn.body)
        c1 = b.create(arith.ConstantOp, 1, i32)
        other = Block()
        with pytest.raises(IRError):
            other.append(c1)
