"""Performance-model trend tests.

These do not check absolute numbers (the simulator is calibrated, not
cycle-exact); they check the *relationships* the paper's evaluation rests on:
warp specialization beats the cp.async baseline, deeper aref rings help,
persistence helps, FP8 outruns FP16, the infeasible (D, P) region is rejected,
and attention benefits from the coarse-grained pipeline.
"""

import pytest

from repro.core.options import NAIVE_OPTIONS, TRITON_BASELINE_OPTIONS
from repro.experiments import common
from repro.kernels.attention import AttentionProblem
from repro.kernels.gemm import GemmProblem


@pytest.fixture(scope="module")
def device():
    return common.perf_device(max_ctas_per_sm=2)


GEMM = GemmProblem(M=8192, N=8192, K=4096, block_m=128, block_n=256, block_k=64)
ATTN = AttentionProblem(batch=4, heads=8, seq_len=4096, head_dim=128,
                        block_m=128, block_n=128)


@pytest.fixture(scope="module")
def gemm_tflops(device):
    """Measure the main GEMM configurations once for the whole module."""
    return {
        "naive": common.measure_gemm(device, GEMM, NAIVE_OPTIONS),
        "triton": common.measure_gemm(device, GEMM, TRITON_BASELINE_OPTIONS),
        "tawa": common.measure_gemm(device, GEMM, common.tawa_gemm_options()),
        "tawa_persistent": common.measure_gemm(
            device, GEMM, common.tawa_gemm_options(persistent=True)),
        "tawa_d1": common.measure_gemm(
            device, GEMM, common.tawa_gemm_options(aref_depth=1, mma_depth=1)),
    }


class TestGemmTrends:
    def test_warp_specialization_beats_triton_baseline(self, gemm_tflops):
        assert gemm_tflops["tawa"] > gemm_tflops["triton"] * 1.05

    def test_triton_baseline_beats_naive(self, gemm_tflops):
        assert gemm_tflops["triton"] > gemm_tflops["naive"] * 1.5

    def test_tawa_speedup_over_triton_is_moderate(self, gemm_tflops):
        # The paper reports ~1.1-1.2x for FP16 GEMM; anything above 2x would
        # mean the baseline model is unfairly weak.
        assert gemm_tflops["tawa"] / gemm_tflops["triton"] < 2.0

    def test_deeper_aref_ring_helps(self, gemm_tflops):
        assert gemm_tflops["tawa"] > gemm_tflops["tawa_d1"] * 1.2

    def test_persistent_kernels_help(self, gemm_tflops):
        assert gemm_tflops["tawa_persistent"] >= gemm_tflops["tawa"] * 0.99

    def test_tawa_stays_below_theoretical_peak(self, device, gemm_tflops):
        peak = device.config.peak_tflops(16)
        assert gemm_tflops["tawa_persistent"] < peak
        assert gemm_tflops["tawa"] > 0.5 * peak  # high utilization at large K

    def test_fp8_faster_than_fp16(self, device):
        fp16 = common.measure_gemm(device, GEMM, common.tawa_gemm_options())
        fp8_problem = GemmProblem(M=8192, N=8192, K=4096, dtype="f8e4m3",
                                  block_m=128, block_n=256, block_k=64)
        fp8 = common.measure_gemm(device, fp8_problem, common.tawa_gemm_options())
        assert fp8 > fp16 * 1.4

    def test_small_k_has_lower_utilization(self, device):
        small_k = GemmProblem(M=8192, N=8192, K=256, block_m=128, block_n=256, block_k=64)
        small = common.measure_gemm(device, small_k, common.tawa_gemm_options())
        assert small < common.measure_gemm(device, GEMM, common.tawa_gemm_options())

    def test_larger_tile_beats_small_tile_with_cooperation(self, device):
        small_tile = GemmProblem(M=8192, N=8192, K=4096, block_m=128, block_n=128, block_k=64)
        small = common.measure_gemm(device, small_tile, common.tawa_gemm_options())
        large = common.measure_gemm(device, GEMM, common.tawa_gemm_options())
        assert large > small * 1.2


class TestAttentionTrends:
    def test_warp_specialization_beats_triton(self, device):
        tawa = common.measure_attention(device, ATTN, common.tawa_attention_options())
        triton = common.measure_attention(device, ATTN, TRITON_BASELINE_OPTIONS)
        assert tawa > triton * 1.05

    def test_coarse_pipeline_helps(self, device):
        with_pipe = common.measure_attention(device, ATTN, common.tawa_attention_options())
        without = common.measure_attention(
            device, ATTN, common.tawa_attention_options().evolve(coarse_grained_pipelining=False))
        assert with_pipe > without * 1.05

    def test_longer_sequences_improve_utilization(self, device):
        short = AttentionProblem(batch=4, heads=8, seq_len=1024, head_dim=128,
                                 block_m=128, block_n=128)
        long_ = AttentionProblem(batch=4, heads=8, seq_len=8192, head_dim=128,
                                 block_m=128, block_n=128)
        opts = common.tawa_attention_options()
        assert common.measure_attention(device, long_, opts) > \
            common.measure_attention(device, short, opts)


class TestUtilizationReporting:
    def test_tensor_core_utilization_reported(self, device):
        from repro.kernels.gemm import run_gemm

        result, _ = run_gemm(device, GEMM, common.tawa_gemm_options())
        assert 0.4 < result.tensor_core_utilization <= 1.0

    def test_memory_roofline_clamps_tiny_compute(self, device):
        from repro.perf.metrics import apply_memory_roofline

        assert apply_memory_roofline(1e-9, bytes_moved=1e9, config=device.config) > 1e-4
        assert apply_memory_roofline(1.0, bytes_moved=None, config=device.config) == 1.0
