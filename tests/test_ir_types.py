"""Unit tests for the IR type system."""

import numpy as np
import pytest

from repro.ir import types as t


class TestScalarTypes:
    def test_lookup_by_name(self):
        assert t.scalar_type("f16") is t.f16
        assert t.scalar_type("i32") is t.i32

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            t.scalar_type("f128")

    def test_float_and_int_kinds(self):
        assert t.f16.is_float and not t.f16.is_integer
        assert t.i32.is_integer and not t.i32.is_float
        assert t.index.is_integer

    def test_bitwidths(self):
        assert t.f8e4m3.bitwidth == 8
        assert t.f16.bitwidth == 16
        assert t.f32.bytes == 4
        assert t.i1.bytes == 1

    def test_fp8_numpy_mapping_is_wider_but_logical_width_is_8(self):
        # FP8 has no NumPy representation; footprint accounting stays 1 byte.
        assert t.f8e4m3.numpy_dtype == np.dtype(np.float32)
        assert t.f8e4m3.bytes == 1

    def test_equality_is_structural(self):
        assert t.ScalarType("f16", 16, "float") == t.f16
        assert t.f16 != t.bf16


class TestTensorType:
    def test_str(self):
        ty = t.TensorType((128, 64), t.f16)
        assert str(ty) == "tensor<128x64xf16>"

    def test_num_elements_and_bytes(self):
        ty = t.TensorType((128, 64), t.f16)
        assert ty.num_elements == 128 * 64
        assert ty.num_bytes == 128 * 64 * 2

    def test_fp8_bytes_are_half_of_fp16(self):
        fp16 = t.TensorType((128, 64), t.f16)
        fp8 = t.TensorType((128, 64), t.f8e4m3)
        assert fp8.num_bytes * 2 == fp16.num_bytes

    def test_zero_or_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            t.TensorType((128, 0), t.f16)

    def test_with_element_type(self):
        ty = t.TensorType((4, 4), t.f32)
        assert ty.with_element_type(t.f16).element_type == t.f16
        assert ty.with_shape((2, 8)).shape == (2, 8)

    def test_hashable(self):
        assert len({t.TensorType((4,), t.f32), t.TensorType((4,), t.f32)}) == 1


class TestArefTypes:
    def test_aref_payload_bytes(self):
        payload = t.TupleType((t.TensorType((128, 64), t.f16), t.TensorType((128, 64), t.f16)))
        aref = t.ArefType(payload, depth=2)
        assert aref.payload_bytes == 2 * 128 * 64 * 2
        assert aref.depth == 2
        assert isinstance(aref.slot_type, t.ArefSlotType)

    def test_aref_str_mentions_depth(self):
        payload = t.TupleType((t.TensorType((8, 8), t.f16),))
        assert "depth=3" in str(t.ArefType(payload, 3))


class TestMemoryTypes:
    def test_smem_buffer(self):
        buf = t.SmemBufferType((2, 128, 64), t.f16)
        assert buf.num_bytes == 2 * 128 * 64 * 2
        assert buf.tensor_type == t.TensorType((2, 128, 64), t.f16)

    def test_pointer_and_desc_str(self):
        assert str(t.PointerType(t.f16)) == "!ptr<f16>"
        assert "tensordesc" in str(t.TensorDescType(t.f16, 2))

    def test_element_type_of(self):
        assert t.element_type_of(t.TensorType((4,), t.f32)) == t.f32
        assert t.element_type_of(t.PointerType(t.f16)) == t.f16
        assert t.element_type_of(t.i32) == t.i32
        with pytest.raises(TypeError):
            t.element_type_of(t.TupleType((t.f32,)))


class TestBroadcast:
    @pytest.mark.parametrize("a, b, expected", [
        ((128, 1), (1, 64), (128, 64)),
        ((128, 64), (), (128, 64)),
        ((1,), (64,), (64,)),
        ((128, 64), (64,), (128, 64)),
    ])
    def test_valid_broadcasts(self, a, b, expected):
        assert t.broadcast_shapes(a, b) == expected

    def test_invalid_broadcast(self):
        with pytest.raises(ValueError):
            t.broadcast_shapes((128, 64), (128, 32))
