"""The compilation-artifact layer: fingerprints, the two cache tiers and the
persistent-cache cold-start guarantees.

The headline property under test: with ``REPRO_CACHE_DIR`` set, a *second
process* compiling the same kernel performs **zero pass-pipeline executions**
(``compile_passes_run`` stays 0, disk-hit counters prove the reuse) and its
launches are bit-identical -- cycles and functional outputs -- to both the
cache-cold first process and a no-cache run.
"""

from __future__ import annotations

import json
import linecache
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import cache as cache_mod
from repro.core.cache import DiskCache, MemoryCache, artifact_fingerprint
from repro.core.options import CompileOptions, NAIVE_OPTIONS
from repro.core.service import CompilerService
from repro.frontend import kernel, tl
from repro.gpusim.config import DEFAULT_CONFIG, H100Config
from repro.gpusim.device import Device
from repro.kernels.gemm import GemmProblem, make_gemm_inputs, matmul_kernel
from repro.perf.counters import COUNTERS
from repro.ir.types import PointerType, TensorDescType, f16, i32

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"

GEMM_TYPES = {
    "a_desc": TensorDescType(f16), "b_desc": TensorDescType(f16),
    "c_ptr": PointerType(f16), "M": i32, "N": i32, "K": i32,
}
GEMM_CONSTS = {"stride_cm": 64, "stride_cn": 1, "Mt": 32, "Nt": 32, "Kt": 32}


def _spec(options: CompileOptions, constexprs=GEMM_CONSTS):
    return matmul_kernel.specialize(GEMM_TYPES, constexprs,
                                    num_warps=options.num_warps)


def _make_elementwise():
    @kernel
    def doubler(x_ptr, out_ptr, n, BLOCK: tl.constexpr):
        pid = tl.program_id(axis=0)
        offs = pid * BLOCK + tl.arange(0, BLOCK)
        mask = offs < n
        x = tl.load(x_ptr + offs, mask=mask, other=0.0)
        tl.store(out_ptr + offs, x + x, mask=mask)

    return doubler


@kernel
def _body_variant_a(x_ptr, out_ptr, n, BLOCK: tl.constexpr):
    pid = tl.program_id(axis=0)
    offs = pid * BLOCK + tl.arange(0, BLOCK)
    mask = offs < n
    x = tl.load(x_ptr + offs, mask=mask, other=0.0)
    tl.store(out_ptr + offs, x + x, mask=mask)


@kernel
def _body_variant_b(x_ptr, out_ptr, n, BLOCK: tl.constexpr):
    pid = tl.program_id(axis=0)
    offs = pid * BLOCK + tl.arange(0, BLOCK)
    mask = offs < n
    x = tl.load(x_ptr + offs, mask=mask, other=0.0)
    tl.store(out_ptr + offs, x * x, mask=mask)


_LIVE_SCALE = 2.0


@kernel
def _live_binding_kernel(x_ptr, out_ptr, n, BLOCK: tl.constexpr):
    pid = tl.program_id(axis=0)
    offs = pid * BLOCK + tl.arange(0, BLOCK)
    mask = offs < n
    x = tl.load(x_ptr + offs, mask=mask, other=0.0)
    tl.store(out_ptr + offs, x * _LIVE_SCALE, mask=mask)


def _make_closure_kernel(scale):
    @kernel
    def scaled(x_ptr, out_ptr, n, BLOCK: tl.constexpr):
        pid = tl.program_id(axis=0)
        offs = pid * BLOCK + tl.arange(0, BLOCK)
        mask = offs < n
        x = tl.load(x_ptr + offs, mask=mask, other=0.0)
        tl.store(out_ptr + offs, x * scale, mask=mask)

    return scaled


class TestFingerprint:
    def test_identical_source_shares_fingerprint(self):
        k1, k2 = _make_elementwise(), _make_elementwise()
        assert k1 is not k2
        assert k1.source_fingerprint == k2.source_fingerprint
        opts = NAIVE_OPTIONS
        types = {"x_ptr": PointerType(f16), "out_ptr": PointerType(f16), "n": i32}
        s1 = k1.specialize(types, {"BLOCK": 32}, num_warps=opts.num_warps)
        s2 = k2.specialize(types, {"BLOCK": 32}, num_warps=opts.num_warps)
        assert (artifact_fingerprint(k1, s1, opts, DEFAULT_CONFIG)
                == artifact_fingerprint(k2, s2, opts, DEFAULT_CONFIG))

    def test_body_edit_changes_fingerprint(self):
        assert (_body_variant_a.source_fingerprint
                != _body_variant_b.source_fingerprint)

    def test_live_global_mutation_changes_fingerprint(self, monkeypatch):
        # Codegen reads fn.__globals__ at build time, so the fingerprint is
        # recomputed per access rather than frozen at decoration time.
        before = _live_binding_kernel.source_fingerprint
        monkeypatch.setattr(sys.modules[__name__], "_LIVE_SCALE", 3.0)
        after = _live_binding_kernel.source_fingerprint
        assert after != before
        monkeypatch.setattr(sys.modules[__name__], "_LIVE_SCALE", 2.0)
        assert _live_binding_kernel.source_fingerprint == before

    def test_binding_edit_changes_fingerprint(self):
        # The source text of the nested kernel is identical; only the value
        # bound to the free variable differs.  Codegen resolves such names at
        # build time, so the fingerprint must see them.
        assert (_make_closure_kernel(2.0).source_fingerprint
                != _make_closure_kernel(3.0).source_fingerprint)
        assert (_make_closure_kernel(2.0).source_fingerprint
                == _make_closure_kernel(2.0).source_fingerprint)

    def test_warm_access_is_memoized(self):
        # Launch loops re-key the artifact cache on every run; the full
        # source+bindings SHA-256 must only run when a binding changed.
        k = _make_elementwise()
        first = k.source_fingerprint
        recomputes = k.fingerprint_recomputes
        assert recomputes == 1
        for _ in range(10):
            assert k.source_fingerprint == first
        assert k.fingerprint_recomputes == recomputes  # all served memoized

    def test_memo_invalidates_on_global_mutation(self, monkeypatch):
        before = _live_binding_kernel.source_fingerprint
        recomputes = _live_binding_kernel.fingerprint_recomputes
        monkeypatch.setattr(sys.modules[__name__], "_LIVE_SCALE", 5.0)
        after = _live_binding_kernel.source_fingerprint
        assert after != before
        assert _live_binding_kernel.fingerprint_recomputes == recomputes + 1
        # Warm again at the new binding...
        assert _live_binding_kernel.source_fingerprint == after
        assert _live_binding_kernel.fingerprint_recomputes == recomputes + 1
        # ...and restoring the old value recomputes back to the old hash.
        monkeypatch.setattr(sys.modules[__name__], "_LIVE_SCALE", 2.0)
        assert _live_binding_kernel.source_fingerprint == before

    def test_memo_sees_globals_defined_after_decoration(self):
        # A module constant defined *below* the @kernel decorator is absent
        # from fn.__globals__ at decoration time; the memo's snapshot must
        # still notice when it appears or changes.
        namespace = {"kernel": kernel, "tl": tl}
        src = (
            "@kernel\n"
            "def late(x_ptr, out_ptr, n, BLOCK: tl.constexpr):\n"
            "    pid = tl.program_id(axis=0)\n"
            "    offs = pid * BLOCK + tl.arange(0, BLOCK)\n"
            "    mask = offs < n\n"
            "    x = tl.load(x_ptr + offs, mask=mask, other=0.0)\n"
            "    tl.store(out_ptr + offs, x * LATE_SCALE, mask=mask)\n"
        )
        # Kernel.__init__ reads the decorated function's source via inspect;
        # prime linecache so the exec'd definition is inspectable.
        filename = "<test_memo_late_globals>"
        linecache.cache[filename] = (
            len(src), None, src.splitlines(keepends=True), filename,
        )
        try:
            exec(compile(src, filename, "exec"), namespace)
            late = namespace["late"]
            undefined = late.source_fingerprint
            namespace["LATE_SCALE"] = 2.0
            defined = late.source_fingerprint
            assert defined != undefined
            namespace["LATE_SCALE"] = 3.0
            assert late.source_fingerprint != defined
        finally:
            linecache.cache.pop(filename, None)

    def test_memo_sees_type_changing_rebinds(self, monkeypatch):
        # Python coerces 2 == 2.0 == True, but _stable_binding hashes each
        # repr distinctly; the memo's snapshot comparison must be exactly as
        # discriminating or it serves a stale fingerprint (and hence a wrong
        # cached artifact) for a type-changing rebind.
        float_fp = _live_binding_kernel.source_fingerprint  # _LIVE_SCALE = 2.0
        monkeypatch.setattr(sys.modules[__name__], "_LIVE_SCALE", 2)
        int_fp = _live_binding_kernel.source_fingerprint
        assert int_fp != float_fp
        monkeypatch.setattr(sys.modules[__name__], "_LIVE_SCALE", True)
        bool_fp = _live_binding_kernel.source_fingerprint
        assert bool_fp not in (float_fp, int_fp)
        monkeypatch.setattr(sys.modules[__name__], "_LIVE_SCALE", 2.0)
        assert _live_binding_kernel.source_fingerprint == float_fp

    def test_memo_ignores_identity_preserving_rebinds(self):
        # Rebinding a name to the *same* object must not thrash the memo.
        k = _make_elementwise()
        assert k.source_fingerprint
        recomputes = k.fingerprint_recomputes
        g = k.fn.__globals__
        g["tl"] = g["tl"]
        assert k.source_fingerprint
        assert k.fingerprint_recomputes == recomputes

    def test_sensitivity_to_every_input(self):
        base_opts = CompileOptions()
        base = artifact_fingerprint(matmul_kernel, _spec(base_opts), base_opts,
                                    DEFAULT_CONFIG)
        # options change
        other_opts = CompileOptions(aref_depth=3)
        assert artifact_fingerprint(matmul_kernel, _spec(other_opts), other_opts,
                                    DEFAULT_CONFIG) != base
        # constexpr change
        consts = dict(GEMM_CONSTS, Kt=16)
        assert artifact_fingerprint(matmul_kernel, _spec(base_opts, consts),
                                    base_opts, DEFAULT_CONFIG) != base
        # hardware config change
        small = H100Config(num_sms=78)
        assert artifact_fingerprint(matmul_kernel, _spec(base_opts), base_opts,
                                    small) != base
        # stability: recomputing with freshly-built inputs is identical
        assert artifact_fingerprint(matmul_kernel, _spec(CompileOptions()),
                                    CompileOptions(), DEFAULT_CONFIG) == base


class TestMemoryTier:
    def test_hit_returns_same_artifact_and_counts(self):
        service = CompilerService(memory_capacity=8)
        c1 = service.compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS, NAIVE_OPTIONS)
        hits = COUNTERS.compile_cache_hits
        c2 = service.compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS, NAIVE_OPTIONS)
        assert c1 is c2
        assert COUNTERS.compile_cache_hits == hits + 1
        assert c1.fingerprint is not None and c1.pipeline == "naive"

    def test_lru_evicts_oldest(self):
        service = CompilerService(memory_capacity=1)
        service.compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS, NAIVE_OPTIONS)
        service.compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS,
                        CompileOptions())  # evicts the naive artifact
        assert len(service) == 1
        misses = COUNTERS.compile_cache_misses
        service.compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS, NAIVE_OPTIONS)
        assert COUNTERS.compile_cache_misses == misses + 1  # recompiled

    def test_plans_are_finalized_eagerly(self):
        service = CompilerService(memory_capacity=8)
        compiled = service.compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS,
                                   CompileOptions(), config=DEFAULT_CONFIG,
                                   plan_modes=(True,))
        # The functional-mode plan is part of the artifact before any launch.
        assert (True, DEFAULT_CONFIG) in compiled.plans


class TestDiskTier:
    @pytest.fixture(autouse=True)
    def _cache_dir(self, tmp_path, monkeypatch):
        self.root = tmp_path / "artifact-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(self.root))

    def test_cold_load_skips_the_entire_pipeline(self):
        warm = CompilerService()
        c1 = warm.compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS, CompileOptions())
        assert COUNTERS.compile_disk_writes == 1
        assert COUNTERS.compile_passes_run > 0

        # A fresh service models a fresh process (empty memory tier).
        passes_before = COUNTERS.compile_passes_run
        cold = CompilerService()
        c2 = cold.compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS, CompileOptions(),
                          plan_modes=(True,))
        assert COUNTERS.compile_disk_hits == 1
        assert COUNTERS.compile_passes_run == passes_before  # zero passes run
        assert c2 is not c1
        assert c2.ir() == c1.ir()  # bit-identical lowered IR
        assert c2.metadata == c1.metadata
        assert c2.fingerprint == c1.fingerprint
        assert (True, DEFAULT_CONFIG) in c2.plans  # plans rebuilt at finalize

    def test_launch_results_bit_identical_across_tiers(self):
        problem = GemmProblem(M=64, N=64, K=64, block_m=32, block_n=32,
                              block_k=32)

        def run_once():
            dev = Device(mode="functional")
            args, _, c_buf = make_gemm_inputs(problem, dev)
            result = dev.run(matmul_kernel, problem.grid, args,
                             problem.constexprs(), CompileOptions())
            return result, np.array(c_buf, copy=True)

        res_cold, out_cold = run_once()
        from repro.gpusim.device import clear_compile_cache
        clear_compile_cache()  # drop the memory tier; disk tier survives
        passes_before = COUNTERS.compile_passes_run
        res_warm, out_warm = run_once()
        assert COUNTERS.compile_passes_run == passes_before
        assert COUNTERS.compile_disk_hits >= 1
        assert res_warm.cycles == res_cold.cycles
        assert res_warm.per_cta_cycles == res_cold.per_cta_cycles
        assert out_warm.tobytes() == out_cold.tobytes()

    def test_options_config_and_source_produce_distinct_entries(self):
        service = CompilerService()
        service.compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS, CompileOptions())
        service.compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS, NAIVE_OPTIONS)
        service.compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS, CompileOptions(),
                        config=H100Config(num_sms=78))
        types = {"x_ptr": PointerType(f16), "out_ptr": PointerType(f16), "n": i32}
        service.compile(_body_variant_a, types, {"BLOCK": 32}, NAIVE_OPTIONS)
        service.compile(_body_variant_b, types, {"BLOCK": 32}, NAIVE_OPTIONS)
        assert len(list(self.root.glob("*.pkl"))) == 5

    def test_corrupted_entry_falls_back_to_recompile(self):
        CompilerService().compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS,
                                  CompileOptions())
        entry = next(self.root.glob("*.pkl"))
        entry.write_bytes(entry.read_bytes()[:64])  # truncate the pickle

        passes_before = COUNTERS.compile_passes_run
        compiled = CompilerService().compile(matmul_kernel, GEMM_TYPES,
                                             GEMM_CONSTS, CompileOptions())
        assert compiled is not None
        assert COUNTERS.compile_disk_errors >= 1
        assert COUNTERS.compile_passes_run > passes_before  # recompiled
        # ... and the damaged entry was replaced by a fresh one.
        assert COUNTERS.compile_disk_writes == 2

    def test_cache_version_bump_invalidates(self, monkeypatch):
        service = CompilerService()
        service.compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS, CompileOptions())
        old_key = next(self.root.glob("*.pkl")).stem

        monkeypatch.setattr(cache_mod, "CACHE_VERSION",
                            cache_mod.CACHE_VERSION + 1)
        # The version participates in the fingerprint: new key, disk miss.
        misses = COUNTERS.compile_disk_misses
        CompilerService().compile(matmul_kernel, GEMM_TYPES, GEMM_CONSTS,
                                  CompileOptions())
        assert COUNTERS.compile_disk_misses == misses + 1
        # And a stale-stamped payload is self-invalidating even when loaded
        # under its old key: discarded, reported as a miss, file removed.
        assert DiskCache(self.root).load(old_key) is None
        assert not (self.root / f"{old_key}.pkl").exists()

    def test_unwritable_cache_root_is_nonfatal(self, monkeypatch, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker / "sub"))
        compiled = CompilerService().compile(matmul_kernel, GEMM_TYPES,
                                             GEMM_CONSTS, CompileOptions())
        assert compiled is not None
        assert COUNTERS.compile_disk_errors >= 1


class TestMemoryCacheUnit:
    def test_lru_order_and_capacity(self):
        cache = MemoryCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b", the least recently used
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_zero_capacity_disables_the_tier(self):
        cache = MemoryCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None and len(cache) == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            MemoryCache(capacity=-1)

    def test_malformed_env_capacity_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MEMORY_ENTRIES", "not-a-number")
        assert MemoryCache().capacity == cache_mod.DEFAULT_MEMORY_ENTRIES
        monkeypatch.setenv("REPRO_CACHE_MEMORY_ENTRIES", "-5")
        assert MemoryCache().capacity == cache_mod.DEFAULT_MEMORY_ENTRIES
        monkeypatch.setenv("REPRO_CACHE_MEMORY_ENTRIES", "0")
        assert MemoryCache().capacity == 0  # documented off switch


# ---------------------------------------------------------------------------
# Cross-process cold start
# ---------------------------------------------------------------------------

KERNEL_FILE_TEMPLATE = '''
from repro.frontend import kernel, tl


@kernel
def scale_kernel(x_ptr, out_ptr, n, BLOCK: tl.constexpr):
    pid = tl.program_id(axis=0)
    offs = pid * BLOCK + tl.arange(0, BLOCK)
    mask = offs < n
    x = tl.load(x_ptr + offs, mask=mask, other=0.0)
    tl.store(out_ptr + offs, x * {scale} + x, mask=mask)
'''

# Same kernel body, but the scale lives in a module-level global the kernel
# reads -- editing it must invalidate cached artifacts even though the kernel
# *source text* is unchanged.
KERNEL_GLOBAL_TEMPLATE = '''
from repro.frontend import kernel, tl

SCALE = {scale}


@kernel
def scale_kernel(x_ptr, out_ptr, n, BLOCK: tl.constexpr):
    pid = tl.program_id(axis=0)
    offs = pid * BLOCK + tl.arange(0, BLOCK)
    mask = offs < n
    x = tl.load(x_ptr + offs, mask=mask, other=0.0)
    tl.store(out_ptr + offs, x * SCALE + x, mask=mask)
'''

DRIVER = '''
import importlib.util, json, sys
sys.path.insert(0, {src!r})
import numpy as np

spec = importlib.util.spec_from_file_location("user_kernels", sys.argv[1])
mod = importlib.util.module_from_spec(spec)
spec.loader.exec_module(mod)

from repro.core.options import CompileOptions
from repro.gpusim.device import Device
from repro.perf.counters import sim_counters

n, block = 192, 64
dev = Device(mode="functional")
x = (np.arange(n, dtype=np.float32) % 17) * 0.25
out = np.zeros(n, dtype=np.float32)
result = dev.run(mod.scale_kernel, (n // block,),
                 {{"x_ptr": dev.pointer(x, "f32"), "out_ptr": dev.pointer(out, "f32"),
                   "n": n}},
                 {{"BLOCK": block}},
                 CompileOptions(enable_warp_specialization=False,
                                software_pipelining=False))
c = sim_counters()
print(json.dumps({{
    "cycles": result.cycles,
    "per_cta_cycles": result.per_cta_cycles,
    "out_sha": __import__("hashlib").sha256(out.tobytes()).hexdigest(),
    "passes_run": c["compile_passes_run"],
    "disk_hits": c["compile_disk_hits"],
    "disk_misses": c["compile_disk_misses"],
    "disk_writes": c["compile_disk_writes"],
}}))
'''


class TestColdProcessRoundTrip:
    def _run_process(self, tmp_path, kernel_file, cache_dir):
        env = dict(os.environ)
        env.pop("REPRO_CACHE_DIR", None)
        env.pop("REPRO_SIM_WORKERS", None)
        if cache_dir is not None:
            env["REPRO_CACHE_DIR"] = str(cache_dir)
        driver = tmp_path / "driver.py"
        driver.write_text(DRIVER.format(src=str(SRC_DIR)))
        proc = subprocess.run(
            [sys.executable, str(driver), str(kernel_file)],
            capture_output=True, text=True, env=env, cwd=str(tmp_path),
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout.strip().splitlines()[-1])

    def test_second_process_gets_disk_hits_and_identical_results(self, tmp_path):
        kernel_file = tmp_path / "user_kernels.py"
        kernel_file.write_text(KERNEL_FILE_TEMPLATE.format(scale="2.0"))
        cache_dir = tmp_path / "cache"

        cold = self._run_process(tmp_path, kernel_file, cache_dir)
        assert cold["passes_run"] > 0
        assert cold["disk_hits"] == 0 and cold["disk_writes"] >= 1

        warm = self._run_process(tmp_path, kernel_file, cache_dir)
        assert warm["passes_run"] == 0  # the whole pipeline was skipped
        assert warm["disk_hits"] >= 1

        uncached = self._run_process(tmp_path, kernel_file, cache_dir=None)
        # Bit-identical across cold / warm / no-cache executions.
        assert warm["cycles"] == cold["cycles"] == uncached["cycles"]
        assert (warm["per_cta_cycles"] == cold["per_cta_cycles"]
                == uncached["per_cta_cycles"])
        assert warm["out_sha"] == cold["out_sha"] == uncached["out_sha"]

    def test_kernel_source_edit_invalidates_across_processes(self, tmp_path):
        kernel_file = tmp_path / "user_kernels.py"
        kernel_file.write_text(KERNEL_FILE_TEMPLATE.format(scale="2.0"))
        cache_dir = tmp_path / "cache"
        first = self._run_process(tmp_path, kernel_file, cache_dir)

        # Edit the kernel body; the content-addressed key must change.
        kernel_file.write_text(KERNEL_FILE_TEMPLATE.format(scale="3.0"))
        edited = self._run_process(tmp_path, kernel_file, cache_dir)
        assert edited["passes_run"] > 0  # recompiled, no stale-artifact reuse
        assert edited["disk_hits"] == 0 and edited["disk_misses"] >= 1
        assert edited["out_sha"] != first["out_sha"]

        # Re-running the edited source warm-starts from its own entry.
        warm = self._run_process(tmp_path, kernel_file, cache_dir)
        assert warm["passes_run"] == 0
        assert warm["out_sha"] == edited["out_sha"]

    def test_global_binding_edit_invalidates_across_processes(self, tmp_path):
        kernel_file = tmp_path / "user_kernels.py"
        kernel_file.write_text(KERNEL_GLOBAL_TEMPLATE.format(scale="2.0"))
        cache_dir = tmp_path / "cache"
        first = self._run_process(tmp_path, kernel_file, cache_dir)

        # Identical kernel source; only the module-level SCALE changes.  A
        # source-text-only fingerprint would serve the stale SCALE=2 artifact.
        kernel_file.write_text(KERNEL_GLOBAL_TEMPLATE.format(scale="3.0"))
        edited = self._run_process(tmp_path, kernel_file, cache_dir)
        assert edited["passes_run"] > 0
        assert edited["disk_hits"] == 0
        assert edited["out_sha"] != first["out_sha"]


# ---------------------------------------------------------------------------
# Singleflight: concurrent identical compiles collapse onto one pipeline
# ---------------------------------------------------------------------------


class TestCompileSingleflight:
    def test_concurrent_identical_compiles_run_one_pipeline(self):
        """8 threads hammering one fingerprint: the first registrant runs
        the pass pipeline, every other thread either waits in the keyed
        in-flight table or arrives late to an ordinary memory-cache hit --
        never a second compile, and all callers get the *same* artifact."""
        service = CompilerService(memory_capacity=8)
        barrier = threading.Barrier(8)
        artifacts: list = [None] * 8
        errors: list = []

        def compile_one(i: int) -> None:
            try:
                barrier.wait()
                artifacts[i] = service.compile(
                    matmul_kernel, GEMM_TYPES, GEMM_CONSTS, NAIVE_OPTIONS)
            except Exception as exc:  # surfaced below; threads must not die
                errors.append(exc)

        threads = [threading.Thread(target=compile_one, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert COUNTERS.compile_cache_misses == 1   # exactly one pipeline
        assert COUNTERS.compile_cache_hits == 7     # everyone else reused it
        assert COUNTERS.compile_singleflight_waits <= 7
        assert all(compiled is artifacts[0] for compiled in artifacts)
        # The in-flight table is transient: nothing leaks once all release.
        assert len(service._inflight) == 0

    def test_waiters_are_counted_when_forced_to_overlap(self):
        """Deterministic overlap: the test thread holds the fingerprint's
        mutex (as if a compile were in flight), a second caller registers
        underneath it and must be counted as a singleflight wait; once the
        hold releases, that caller leads the one real compile."""
        service = CompilerService(memory_capacity=8)
        spec = _spec(NAIVE_OPTIONS)
        key = artifact_fingerprint(matmul_kernel, spec, NAIVE_OPTIONS,
                                   DEFAULT_CONFIG)
        compiled: list = []

        def blocked_compile() -> None:
            compiled.append(service.compile(
                matmul_kernel, GEMM_TYPES, GEMM_CONSTS, NAIVE_OPTIONS))

        with service._inflight.hold(key):
            thread = threading.Thread(target=blocked_compile)
            thread.start()
            # Registration (and the wait count) happens before the caller
            # blocks on the key's lock; wait for it so the overlap is real.
            deadline = time.monotonic() + 10
            while COUNTERS.compile_singleflight_waits < 1:
                assert time.monotonic() < deadline, "waiter never registered"
                time.sleep(0.001)
        thread.join()

        assert COUNTERS.compile_singleflight_waits == 1
        assert COUNTERS.compile_cache_misses == 1  # the freed waiter led it
        assert compiled[0] is service.compile(
            matmul_kernel, GEMM_TYPES, GEMM_CONSTS, NAIVE_OPTIONS)
