"""Tests for runtime memory objects and the Device launch API."""

import numpy as np
import pytest

from repro.core.options import CompileOptions, NAIVE_OPTIONS
from repro.gpusim.device import Device, _linear_to_pid, _normalize_grid
from repro.gpusim.engine import SimulationError
from repro.gpusim.memory import GlobalBuffer, Pointer, SmemTile, SymbolicTile, TensorDesc
from repro.ir.types import PointerType, TensorDescType, f8e4m3, f16
from repro.kernels.gemm import GemmProblem, make_gemm_inputs, matmul_kernel


class TestGlobalBuffer:
    def test_from_numpy_and_roundtrip(self):
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        buf = GlobalBuffer.from_numpy(arr, "f32")
        np.testing.assert_array_equal(buf.to_numpy(), arr)
        assert buf.num_bytes == 12 * 4

    def test_fp8_logical_bytes(self):
        buf = GlobalBuffer.empty((16, 16), "f8e4m3")
        assert buf.num_bytes == 256  # one logical byte per element

    def test_read_tile_zero_fills_out_of_bounds(self):
        arr = np.ones((4, 4), dtype=np.float32)
        buf = GlobalBuffer.from_numpy(arr, "f32")
        tile = buf.read_tile((2, 2), (4, 4))
        assert tile[:2, :2].sum() == 4
        assert tile[2:, :].sum() == 0 and tile[:, 2:].sum() == 0

    def test_write_tile_clips_to_bounds(self):
        buf = GlobalBuffer.empty((4, 4), "f32")
        buf.write_tile((2, 2), np.full((4, 4), 7.0, dtype=np.float32))
        assert buf.to_numpy()[3, 3] == 7.0
        assert buf.to_numpy()[0, 0] == 0.0

    def test_gather_scatter_with_mask(self):
        buf = GlobalBuffer.from_numpy(np.arange(8, dtype=np.float32), "f32")
        offs = np.array([0, 3, 7, 100])
        vals = buf.gather(offs, mask=np.array([True, True, True, True]), other=-1.0)
        assert list(vals) == [0.0, 3.0, 7.0, -1.0]
        buf.scatter(np.array([1, 100]), np.array([9.0, 9.0]))
        assert buf.to_numpy()[1] == 9.0

    def test_non_functional_buffer_has_no_data(self):
        buf = GlobalBuffer.empty((8, 8), "f16", functional=False)
        assert not buf.is_functional
        with pytest.raises(RuntimeError):
            buf.to_numpy()


class TestSmemAndPointers:
    def test_smem_ring_slices_wrap(self):
        tile = SmemTile((2, 4, 4), f16, functional=True)
        tile.slice(0).write(np.ones((4, 4)))
        tile.slice(2).write(np.full((4, 4), 3.0))  # wraps back to slot 0
        assert tile.slice(0).read()[0, 0] == 3.0

    def test_symbolic_views_in_performance_mode(self):
        tile = SmemTile((2, 4, 4), f16, functional=False)
        assert isinstance(tile.slice(1).read(), SymbolicTile)

    def test_pointer_offsets_and_ir_type(self):
        buf = GlobalBuffer.empty((8,), "f16")
        ptr = Pointer(buf)
        moved = ptr.offset_by(np.arange(4))
        assert moved.shape == (4,)
        assert ptr.ir_type == PointerType(f16)

    def test_tensor_desc_tile_bytes(self):
        desc = TensorDesc(GlobalBuffer.empty((128, 128), "f8e4m3"))
        assert desc.tile_bytes((64, 64)) == 64 * 64
        assert desc.ir_type == TensorDescType(f8e4m3, 2)


class TestDeviceAPI:
    def test_grid_normalization(self):
        assert _normalize_grid(8) == (8, 1, 1)
        assert _normalize_grid((2, 3)) == (2, 3, 1)
        with pytest.raises(SimulationError):
            _normalize_grid((0,))

    def test_linear_to_pid(self):
        assert _linear_to_pid(5, (4, 2, 1)) == (1, 1, 0)

    def test_infer_arg_types(self):
        dev = Device(mode="functional")
        buf = dev.buffer(np.zeros((4, 4), dtype=np.float32), "f16")
        assert Device.infer_arg_type(dev.tensor_desc(buf)) == TensorDescType(f16, 2)
        assert Device.infer_arg_type(dev.pointer(buf)) == PointerType(f16)
        assert str(Device.infer_arg_type(3)) == "i32"
        assert str(Device.infer_arg_type(2.5)) == "f32"
        with pytest.raises(SimulationError):
            Device.infer_arg_type(np.zeros(4))

    def test_raw_numpy_arguments_rejected_at_launch(self):
        dev = Device(mode="functional")
        problem = GemmProblem(M=64, N=64, K=32, block_m=32, block_n=32, block_k=32)
        args, _, _ = make_gemm_inputs(problem, dev)
        args["c_ptr"] = np.zeros((64, 64))
        with pytest.raises(SimulationError, match="wrap arrays"):
            dev.run(matmul_kernel, problem.grid, args, problem.constexprs(), NAIVE_OPTIONS)

    def test_missing_argument_detected(self):
        dev = Device(mode="functional")
        problem = GemmProblem(M=64, N=64, K=32, block_m=32, block_n=32, block_k=32)
        args, _, _ = make_gemm_inputs(problem, dev)
        del args["K"]
        from repro.frontend import FrontendError

        with pytest.raises((SimulationError, FrontendError), match="missing"):
            dev.run(matmul_kernel, problem.grid, args, problem.constexprs(), NAIVE_OPTIONS)

    def test_compile_cache_reuses_specializations(self):
        dev = Device(mode="functional")
        problem = GemmProblem(M=64, N=64, K=32, block_m=32, block_n=32, block_k=32)
        args, _, _ = make_gemm_inputs(problem, dev)
        c1 = dev.compile(matmul_kernel, args, problem.constexprs(), NAIVE_OPTIONS)
        c2 = dev.compile(matmul_kernel, args, problem.constexprs(), NAIVE_OPTIONS)
        assert c1 is c2
        c3 = dev.compile(matmul_kernel, args, problem.constexprs(),
                         CompileOptions(enable_warp_specialization=True))
        assert c3 is not c1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Device(mode="emulation")

    def test_performance_mode_extrapolates(self):
        dev = Device(mode="performance", max_ctas_per_sm_simulated=2)
        problem = GemmProblem(M=8192, N=8192, K=512, block_m=128, block_n=256, block_k=64)
        from repro.kernels.gemm import run_gemm

        result, c = run_gemm(dev, problem, CompileOptions(num_consumer_groups=2, aref_depth=3))
        assert c is None
        assert result.extrapolated
        assert result.simulated_ctas <= 2
        assert result.total_ctas == problem.grid
        assert result.tflops and result.tflops > 50

    def test_launch_result_describe(self):
        dev = Device(mode="functional")
        problem = GemmProblem(M=64, N=64, K=32, block_m=32, block_n=32, block_k=32)
        from repro.kernels.gemm import run_gemm

        result, _ = run_gemm(dev, problem, NAIVE_OPTIONS)
        text = result.describe()
        assert "us" in text and "TC util" in text
