"""Sharded multi-process execution and the batched launch API.

The contract under test: sharding a functional launch across worker
processes is *observationally invisible* -- outputs, per-CTA cycle counts,
total cycles and utilization are bit-identical to serial execution -- and the
batched ``run_many`` / ``LaunchBatch`` API returns exactly what the same
launches would return one at a time.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro import faults
from repro.core.options import CompileOptions
from repro.frontend.errors import FrontendError
from repro.gpusim.device import Device, LaunchSpec
from repro.gpusim.engine import SimulationError
from repro.gpusim.memory import GlobalBuffer, shared_ndarray
from repro.gpusim.parallel import (
    BACKOFF,
    CtaShard,
    MERGED,
    ParallelLaunch,
    RUNNING,
    SupervisorConfig,
    fork_available,
    resolve_shard_retries,
    resolve_shard_timeout,
    resolve_workers,
    run_sharded,
    shard_cta_ids,
)
from repro.kernels.attention import AttentionProblem, run_attention
from repro.kernels.gemm import GemmProblem, gemm_reference, make_gemm_inputs, \
    matmul_kernel, run_gemm
from repro.perf.counters import COUNTERS

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires fork()")

WS_OPTIONS = CompileOptions(enable_warp_specialization=True, aref_depth=2,
                            mma_pipeline_depth=2, num_consumer_groups=2)


# ---------------------------------------------------------------------------
# Sharding primitives
# ---------------------------------------------------------------------------


class TestShardingPrimitives:
    def test_round_robin_shards_cover_all_ctas(self):
        shards = shard_cta_ids(list(range(10)), 3)
        assert [s.index for s in shards] == [0, 1, 2]
        assert shards[0].cta_ids == (0, 3, 6, 9)
        assert shards[1].cta_ids == (1, 4, 7)
        assert shards[2].cta_ids == (2, 5, 8)
        assert sorted(sum((s.cta_ids for s in shards), ())) == list(range(10))

    def test_more_workers_than_ctas_drops_empty_shards(self):
        shards = shard_cta_ids([0, 1], 4)
        assert len(shards) == 2
        assert all(s.cta_ids for s in shards)

    def test_shard_descriptor_is_picklable(self):
        import pickle

        shard = CtaShard(1, (3, 4, 5))
        assert pickle.loads(pickle.dumps(shard)) == shard

    def test_resolve_workers_explicit(self):
        expected = 3 if fork_available() else 1
        assert resolve_workers(3) == expected
        assert resolve_workers(1) == 1
        with pytest.raises(SimulationError):
            resolve_workers(-2)

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_WORKERS", "2")
        assert resolve_workers(None) == (2 if fork_available() else 1)
        monkeypatch.setenv("REPRO_SIM_WORKERS", "")
        assert resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_SIM_WORKERS", "auto")
        assert resolve_workers(None) >= 1
        monkeypatch.setenv("REPRO_SIM_WORKERS", "lots")
        with pytest.raises(SimulationError, match="REPRO_SIM_WORKERS"):
            resolve_workers(None)

    def test_device_workers_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_WORKERS", "2")
        assert Device().workers == (2 if fork_available() else 1)
        assert Device(workers=1).workers == 1

    def test_resolve_shard_timeout(self, monkeypatch):
        assert resolve_shard_timeout(2.5) == 2.5
        assert resolve_shard_timeout(0) == 0.0
        monkeypatch.setenv("REPRO_SIM_SHARD_TIMEOUT", "7.5")
        assert resolve_shard_timeout(None) == 7.5
        monkeypatch.setenv("REPRO_SIM_SHARD_TIMEOUT", "")
        assert resolve_shard_timeout(None) == 60.0
        monkeypatch.setenv("REPRO_SIM_SHARD_TIMEOUT", "soon")
        with pytest.raises(SimulationError, match="REPRO_SIM_SHARD_TIMEOUT"):
            resolve_shard_timeout(None)
        with pytest.raises(SimulationError):
            resolve_shard_timeout(-1.0)

    def test_resolve_shard_retries(self, monkeypatch):
        assert resolve_shard_retries(5) == 5
        assert resolve_shard_retries(0) == 0
        monkeypatch.setenv("REPRO_SIM_SHARD_RETRIES", "3")
        assert resolve_shard_retries(None) == 3
        monkeypatch.setenv("REPRO_SIM_SHARD_RETRIES", "")
        assert resolve_shard_retries(None) == 2
        monkeypatch.setenv("REPRO_SIM_SHARD_RETRIES", "many")
        with pytest.raises(SimulationError, match="REPRO_SIM_SHARD_RETRIES"):
            resolve_shard_retries(None)
        with pytest.raises(SimulationError):
            resolve_shard_retries(-1)

    def test_device_supervision_knobs_flow_to_settings(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SHARD_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_SIM_SHARD_RETRIES", "4")
        settings = Device().executor_settings()
        assert settings.shard_timeout == 12.5
        assert settings.shard_retries == 4
        settings = Device(shard_timeout=1.0, shard_retries=0).executor_settings()
        assert settings.shard_timeout == 1.0
        assert settings.shard_retries == 0

    def test_supervisor_heartbeat_interval(self):
        assert SupervisorConfig(timeout=0).heartbeat_interval == 0.0
        assert SupervisorConfig(timeout=2.0).heartbeat_interval == 0.5
        assert SupervisorConfig(timeout=60.0).heartbeat_interval == 1.0
        cfg = SupervisorConfig(backoff=0.05)
        assert cfg.retry_delay(1) == 0.05
        assert cfg.retry_delay(2) == 0.1
        assert cfg.retry_delay(3) == 0.2


# ---------------------------------------------------------------------------
# Shared-memory buffers
# ---------------------------------------------------------------------------


class TestSharedBuffers:
    def test_make_shared_preserves_contents(self):
        data = np.arange(12, dtype=np.float32).reshape(3, 4)
        buf = GlobalBuffer.from_numpy(data, "f32", "x")
        assert not buf.is_shared
        buf.make_shared()
        assert buf.is_shared
        assert np.array_equal(buf.to_numpy(), data)
        buf.make_shared()  # idempotent
        assert buf.is_shared

    def test_make_shared_noop_in_performance_mode(self):
        buf = GlobalBuffer((4, 4), "f16", None, "sym")
        buf.make_shared()
        assert not buf.is_shared

    def test_release_shared_round_trip(self):
        data = np.arange(12, dtype=np.float32).reshape(3, 4)
        buf = GlobalBuffer.from_numpy(data, "f32", "x")
        buf.make_shared()
        assert COUNTERS.parallel_shared_bytes > 0
        buf.to_numpy()[1, 2] = 99.0  # a "worker" write into the mapping
        buf.release_shared()
        assert not buf.is_shared
        assert COUNTERS.parallel_shared_bytes == 0
        # Contents (including the in-mapping write) survive re-privatization.
        assert buf.to_numpy()[1, 2] == 99.0
        assert np.array_equal(np.delete(buf.to_numpy().ravel(), 6),
                              np.delete(data.ravel(), 6))
        buf.release_shared()  # idempotent
        assert COUNTERS.parallel_shared_bytes == 0

    def test_release_shared_closes_the_mapping(self):
        buf = GlobalBuffer.from_numpy(np.zeros((4, 4), np.float32), "f32", "x")
        buf.make_shared()
        backing = buf._shared_backing
        assert backing is not None and not backing.closed
        buf.release_shared()
        assert backing.closed
        assert buf._shared_backing is None

    def test_shared_bytes_gauge_tracks_multiple_buffers(self):
        bufs = [GlobalBuffer.from_numpy(np.zeros(64, np.float32), "f32", f"b{i}")
                for i in range(3)]
        for b in bufs:
            b.make_shared()
        live = COUNTERS.parallel_shared_bytes
        assert live >= 3 * 64 * 4
        for b in bufs:
            b.release_shared()
        assert COUNTERS.parallel_shared_bytes == 0

    @needs_fork
    def test_fork_sees_writes_to_shared_array(self):
        arr = shared_ndarray((8,), np.float32)
        arr[:] = 0.0

        def child():
            arr[3] = 42.0

        proc = mp.get_context("fork").Process(target=child)
        proc.start()
        proc.join()
        assert proc.exitcode == 0
        assert arr[3] == 42.0
        # a regular (private) array would NOT propagate the write
        private = np.zeros(8, dtype=np.float32)

        def child2():
            private[3] = 42.0

        proc = mp.get_context("fork").Process(target=child2)
        proc.start()
        proc.join()
        assert private[3] == 0.0


# ---------------------------------------------------------------------------
# ParallelLaunch mechanics
# ---------------------------------------------------------------------------


@needs_fork
class TestParallelLaunch:
    def test_merges_rows_in_launch_order(self):
        def run_cta(linear):
            return (float(linear) * 10.0, 1.0, linear)

        rows = run_sharded(run_cta, [4, 2, 7, 0], 2)
        assert rows == [(40.0, 1.0, 4), (20.0, 1.0, 2), (70.0, 1.0, 7), (0.0, 1.0, 0)]

    def test_worker_counter_deltas_are_merged(self):
        def run_cta(linear):
            COUNTERS.plan_ctas += 1
            return (1.0, 0.0, 0)

        before = COUNTERS.plan_ctas
        run_sharded(run_cta, list(range(6)), 3)
        assert COUNTERS.plan_ctas == before + 6
        assert COUNTERS.parallel_launches >= 1
        assert COUNTERS.parallel_workers_forked >= 3

    def test_worker_exception_propagates(self):
        def run_cta(linear):
            if linear == 3:
                raise ValueError("boom in CTA 3")
            return (1.0, 0.0, 0)

        with pytest.raises(SimulationError, match="boom in CTA 3"):
            run_sharded(run_cta, list(range(5)), 2)

    def test_dead_worker_is_recovered(self):
        """A worker that dies without reporting no longer kills the launch.

        Every forked attempt dies (the exit is pid-guarded so the parent's
        terminal serial fallback survives); the launch must still complete
        with correct rows, through retries and then the in-process fallback.
        """
        parent = os.getpid()

        def run_cta(linear):
            if os.getpid() != parent:
                os._exit(17)  # die without reporting, but only in a worker
            return (float(linear), 0.0, linear)

        before = (COUNTERS.shard_retries, COUNTERS.shard_serial_fallbacks)
        rows = run_sharded(run_cta, [0, 1], 2,
                           supervisor=SupervisorConfig(timeout=30, retries=1,
                                                       backoff=0.01))
        assert rows == [(0.0, 0.0, 0), (1.0, 0.0, 1)]
        # both shards died on every fork: retried once each, then fell back
        assert COUNTERS.shard_retries == before[0] + 2
        assert COUNTERS.shard_serial_fallbacks == before[1] + 2

    def test_overlapped_launches(self):
        """Two ParallelLaunches can be in flight at once (run_many pipelining)."""
        first = ParallelLaunch(lambda i: (float(i), 0.0, 0), [0, 1, 2], 2)
        second = ParallelLaunch(lambda i: (float(i) * 2, 0.0, 0), [0, 1], 2)
        assert second.wait() == [(0.0, 0.0, 0), (2.0, 0.0, 0)]
        assert first.wait() == [(0.0, 0.0, 0), (1.0, 0.0, 0), (2.0, 0.0, 0)]


# ---------------------------------------------------------------------------
# Supervision: injected kill / hang / pipe-corruption recovery
# ---------------------------------------------------------------------------


def _identity_cta(linear):
    return (float(linear), 0.0, linear)


@needs_fork
class TestSupervision:
    """The supervised launch recovers from infrastructure failures.

    Faults are injected through :mod:`repro.faults` (fork-shared budgets, so
    a fault consumed by one attempt is not re-triggered by its retry) and the
    launch must always produce the same rows serial execution would.
    """

    FAST = SupervisorConfig(timeout=30.0, retries=2, backoff=0.01)

    def test_injected_kill_is_retried(self):
        with faults.inject_faults("kill:worker=1,cta=0"):
            rows = run_sharded(_identity_cta, list(range(8)), 3,
                               supervisor=self.FAST)
        assert rows == [_identity_cta(i) for i in range(8)]
        assert COUNTERS.shard_retries == 1
        assert COUNTERS.shard_serial_fallbacks == 0
        assert COUNTERS.faults_injected == 1

    def test_injected_hang_trips_the_deadline(self):
        with faults.inject_faults("hang:worker=0,cta=1,seconds=60"):
            rows = run_sharded(
                _identity_cta, list(range(6)), 2,
                supervisor=SupervisorConfig(timeout=0.4, retries=2,
                                            backoff=0.01))
        assert rows == [_identity_cta(i) for i in range(6)]
        assert COUNTERS.shard_timeouts == 1
        assert COUNTERS.shard_retries == 1
        assert COUNTERS.faults_injected == 1

    def test_injected_pipe_corruption_is_retried(self):
        with faults.inject_faults("pipe:worker=1"):
            rows = run_sharded(_identity_cta, list(range(6)), 2,
                               supervisor=self.FAST)
        assert rows == [_identity_cta(i) for i in range(6)]
        assert COUNTERS.shard_retries == 1
        assert COUNTERS.faults_injected == 1

    def test_exhausted_retries_degrade_to_serial_fallback(self):
        """A shard that dies on every fork is re-executed in the parent."""
        with faults.inject_faults("kill:worker=0,count=-1"):
            rows = run_sharded(
                _identity_cta, list(range(6)), 2,
                supervisor=SupervisorConfig(timeout=30, retries=2,
                                            backoff=0.01))
        assert rows == [_identity_cta(i) for i in range(6)]
        assert COUNTERS.shard_retries == 2
        assert COUNTERS.shard_serial_fallbacks == 1
        # initial fork + 2 retries of worker 0 each consumed one kill
        assert COUNTERS.faults_injected == 3

    def test_zero_retries_fall_back_immediately(self):
        with faults.inject_faults("kill:worker=0"):
            rows = run_sharded(
                _identity_cta, [0, 1], 2,
                supervisor=SupervisorConfig(timeout=30, retries=0))
        assert rows == [_identity_cta(0), _identity_cta(1)]
        assert COUNTERS.shard_retries == 0
        assert COUNTERS.shard_serial_fallbacks == 1

    def test_only_the_failed_shard_is_retried(self):
        """Surviving shards merge once; only the killed shard re-forks."""
        with faults.inject_faults("kill:worker=2,cta=0"):
            launch = ParallelLaunch(_identity_cta, list(range(9)), 3,
                                    supervisor=self.FAST)
            rows = launch.wait()
        assert rows == [_identity_cta(i) for i in range(9)]
        assert launch.shard_states() == {0: MERGED, 1: MERGED, 2: MERGED}
        # 3 initial forks + exactly one re-fork
        assert COUNTERS.parallel_workers_forked == 4

    def test_worker_error_is_not_retried(self):
        """A worker-*reported* exception is deterministic; fail fast."""
        def run_cta(linear):
            if linear == 3:
                raise ValueError("boom in CTA 3")
            return _identity_cta(linear)

        with pytest.raises(SimulationError, match="boom in CTA 3"):
            run_sharded(run_cta, list(range(5)), 2, supervisor=self.FAST)
        assert COUNTERS.shard_retries == 0
        assert COUNTERS.shard_serial_fallbacks == 0

    def test_disabled_deadline_still_recovers_from_death(self):
        """timeout=0 turns off hang detection, not death detection."""
        with faults.inject_faults("kill:worker=0,cta=0"):
            rows = run_sharded(
                _identity_cta, [0, 1, 2], 2,
                supervisor=SupervisorConfig(timeout=0, retries=1,
                                            backoff=0.01))
        assert rows == [_identity_cta(i) for i in range(3)]
        assert COUNTERS.shard_retries == 1
        assert COUNTERS.shard_timeouts == 0

    def test_heartbeats_keep_long_shards_alive(self):
        """A shard far outliving the deadline survives while it progresses."""
        def slow_cta(linear):
            import time

            time.sleep(0.12)
            return _identity_cta(linear)

        # 8 CTAs x 0.12s on one worker ~ 1s of work against a 0.4s deadline:
        # without heartbeats (interval = 0.1s) this would be declared hung.
        rows = run_sharded(slow_cta, list(range(8)), 1,
                           supervisor=SupervisorConfig(timeout=0.4, retries=0))
        assert rows == [_identity_cta(i) for i in range(8)]
        assert COUNTERS.shard_timeouts == 0
        assert COUNTERS.shard_serial_fallbacks == 0

    def test_gemm_bit_identical_under_injected_kill(self):
        """The acceptance bar: recovery is observationally invisible."""
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        r_s, c_s = run_gemm(Device(mode="functional", workers=1), problem,
                            WS_OPTIONS)
        with faults.inject_faults("kill:worker=1,cta=0"):
            device = Device(mode="functional", workers=2, shard_retries=2)
            r_p, c_p = run_gemm(device, problem, WS_OPTIONS)
        assert COUNTERS.faults_injected == 1
        assert COUNTERS.shard_retries == 1
        assert r_p.cycles == r_s.cycles
        assert r_p.per_cta_cycles == r_s.per_cta_cycles
        assert r_p.bytes_copied == r_s.bytes_copied
        assert np.array_equal(c_p, c_s)
        assert COUNTERS.parallel_shared_bytes == 0


# ---------------------------------------------------------------------------
# Supervision-loop regressions: bounded drains, progress-gated deadlines
# ---------------------------------------------------------------------------


@needs_fork
class TestSupervisionLoopRegressions:
    """Pin the wait-loop fixes: the supervisor sleeps instead of spinning,
    and only heartbeats that report *new* progress extend a shard's hang
    deadline."""

    def test_kill_then_backoff_launch_has_bounded_drains(self):
        """A launch waiting out retry backoffs must sleep, not busy-spin."""
        with faults.inject_faults("kill:worker=0,count=-1"):
            launch = ParallelLaunch(
                _identity_cta, list(range(6)), 2,
                supervisor=SupervisorConfig(timeout=30, retries=2,
                                            backoff=0.15))
            rows = launch.wait()
        assert rows == [_identity_cta(i) for i in range(6)]
        assert COUNTERS.shard_retries == 2
        # Three attempts of worker 0 with ~0.15s/0.3s backoffs between them:
        # every drain either receives a message or sleeps a bounded tick, so
        # the count stays small.  A drain that returns without sleeping
        # would spin the wait loop and record tens of thousands here.
        assert launch.drain_calls < 60

    def _merged_launch(self, supervisor=None) -> ParallelLaunch:
        launch = ParallelLaunch(_identity_cta, [0, 1], 2, supervisor=supervisor)
        launch.wait()
        return launch

    def test_drain_sleeps_a_fixed_tick_when_nothing_is_due(self):
        """No live pipes and no finite horizon: drain must still sleep.

        The unfixed branch (``if timeout:``) treated the ``None``-from-inf
        horizon as "don't sleep" and returned immediately, hot-looping
        ``wait()``.
        """
        launch = self._merged_launch()
        state = launch._states[0]
        state.status = BACKOFF
        state.retry_at = math.inf  # no wakeup scheduled at all
        start = time.monotonic()
        launch._drain({})
        elapsed = time.monotonic() - start
        state.status = MERGED
        assert elapsed >= 0.04

    def test_drain_bounds_a_distant_backoff_horizon(self):
        """A far-off retry sleeps one bounded tick, not the whole horizon."""
        launch = self._merged_launch()
        state = launch._states[0]
        state.status = BACKOFF
        state.retry_at = time.monotonic() + 30.0
        start = time.monotonic()
        launch._drain({})
        elapsed = time.monotonic() - start
        state.status = MERGED
        assert 0.04 <= elapsed <= 5.0

    def test_drain_handles_an_already_due_horizon(self):
        """A horizon in the past must neither sleep long nor raise."""
        launch = self._merged_launch()
        state = launch._states[0]
        state.status = BACKOFF
        state.retry_at = time.monotonic() - 1.0
        start = time.monotonic()
        launch._drain({})
        elapsed = time.monotonic() - start
        state.status = MERGED
        assert elapsed < 1.0  # returns promptly so wait() can re-dispatch

    def test_heartbeat_without_progress_does_not_extend_deadline(self):
        """Only a heartbeat whose ctas_done advanced refreshes the deadline.

        The unfixed handler refreshed it on *any* heartbeat, so a worker
        beating while stuck (injected hang, livelocked CTA) never timed out.
        """
        launch = self._merged_launch(
            supervisor=SupervisorConfig(timeout=5.0))
        state = launch._states[0]
        state.status = RUNNING
        state.last_progress = 2
        state.deadline = frozen = time.monotonic() + 0.25
        launch._handle(state, ("hb", 0, 2), {})  # chatter, no progress
        assert state.deadline == frozen
        launch._handle(state, ("hb", 0, 1), {})  # stale/reordered report
        assert state.deadline == frozen
        assert state.last_progress == 2
        launch._handle(state, ("hb", 0, 3), {})  # real progress
        assert state.deadline > frozen
        state.status = MERGED

    def test_hang_that_heartbeats_still_times_out(self):
        """An injected hang beats without progress; the deadline must see
        through the chatter and still declare the shard hung."""
        start = time.monotonic()
        with faults.inject_faults("hang:worker=0,cta=0,seconds=60"):
            rows = run_sharded(
                _identity_cta, list(range(6)), 2,
                supervisor=SupervisorConfig(timeout=0.5, retries=1,
                                            backoff=0.01))
        assert rows == [_identity_cta(i) for i in range(6)]
        assert COUNTERS.shard_timeouts == 1
        assert COUNTERS.shard_retries == 1
        assert COUNTERS.faults_injected == 1
        # The supervisor's deadline, not the 60s sleep, ended the hang.
        assert time.monotonic() - start < 30.0


# ---------------------------------------------------------------------------
# Bit-identical sharded kernel execution
# ---------------------------------------------------------------------------


@needs_fork
class TestShardedLaunchesBitIdentical:
    def _gemm(self):
        return GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64, block_k=32)

    @pytest.mark.parametrize("use_plans", [True, False],
                             ids=["plans", "interpreter"])
    def test_gemm_matches_serial(self, use_plans):
        problem = self._gemm()
        r_s, c_s = run_gemm(Device(mode="functional", use_plans=use_plans, workers=1),
                            problem, WS_OPTIONS)
        r_p, c_p = run_gemm(Device(mode="functional", use_plans=use_plans, workers=2),
                            problem, WS_OPTIONS)
        assert r_p.cycles == r_s.cycles
        assert r_p.per_cta_cycles == r_s.per_cta_cycles
        assert r_p.tensor_core_utilization == r_s.tensor_core_utilization
        assert r_p.bytes_copied == r_s.bytes_copied
        assert np.array_equal(c_p, c_s)

    def test_gemm_matches_reference(self):
        problem = self._gemm()
        device = Device(mode="functional", workers=2)
        args, a, b = make_gemm_inputs(problem, device)
        device.run(matmul_kernel, grid=problem.grid, args=args,
                   constexprs=problem.constexprs(), options=WS_OPTIONS)
        c = args["c_ptr"].buffer.to_numpy().astype(np.float32)
        np.testing.assert_allclose(
            c, gemm_reference(a, b, problem.dtype).astype(np.float32),
            rtol=2e-2, atol=2e-2)

    def test_attention_matches_serial(self):
        problem = AttentionProblem(batch=1, heads=2, seq_len=128, head_dim=64,
                                   block_m=64, block_n=64, causal=True)
        options = CompileOptions(enable_warp_specialization=True, aref_depth=2,
                                 mma_pipeline_depth=2, num_consumer_groups=2,
                                 coarse_grained_pipelining=True)
        r_s, o_s = run_attention(Device(mode="functional", workers=1), problem, options)
        r_p, o_p = run_attention(Device(mode="functional", workers=3), problem, options)
        assert r_p.cycles == r_s.cycles
        assert r_p.per_cta_cycles == r_s.per_cta_cycles
        assert np.array_equal(o_p, o_s)

    def test_persistent_gemm_matches_serial(self):
        problem = self._gemm()
        options = CompileOptions(enable_warp_specialization=True, aref_depth=2,
                                 mma_pipeline_depth=2, num_consumer_groups=2,
                                 persistent=True)
        r_s, c_s = run_gemm(Device(mode="functional", workers=1), problem, options)
        r_p, c_p = run_gemm(Device(mode="functional", workers=2), problem, options)
        assert r_p.cycles == r_s.cycles
        assert np.array_equal(c_p, c_s)

    def test_performance_mode_stays_serial(self):
        problem = GemmProblem(M=2048, N=2048, K=512)
        before = COUNTERS.parallel_launches
        device = Device(mode="performance", workers=4, max_ctas_per_sm_simulated=2)
        run_gemm(device, problem, WS_OPTIONS)
        assert COUNTERS.parallel_launches == before

    def test_trace_collection_stays_serial(self):
        problem = self._gemm()
        before = COUNTERS.parallel_launches
        device = Device(mode="functional", workers=2, collect_trace=True)
        result, _ = run_gemm(device, problem, WS_OPTIONS)
        assert COUNTERS.parallel_launches == before
        assert result.trace  # the serial path still collected a trace


# ---------------------------------------------------------------------------
# Batched launch API
# ---------------------------------------------------------------------------


class TestRunMany:
    def _specs(self, device, ks=(64, 128)):
        specs = []
        for k in ks:
            problem = GemmProblem(M=128, N=128, K=k, block_m=64, block_n=64,
                                  block_k=32)
            args, _, _ = make_gemm_inputs(problem, device)
            specs.append(LaunchSpec(matmul_kernel, problem.grid, args,
                                    problem.constexprs(), WS_OPTIONS, problem.flops))
        return specs

    @pytest.mark.parametrize("workers", [1, pytest.param(2, marks=needs_fork)])
    def test_matches_individual_launches(self, workers):
        device = Device(mode="functional", workers=workers)
        specs = self._specs(device)
        batched = device.run_many(specs)
        for k, spec, result in zip((64, 128), specs, batched):
            problem = GemmProblem(M=128, N=128, K=k, block_m=64, block_n=64,
                                  block_k=32)
            expected, c = run_gemm(Device(mode="functional", workers=1), problem, WS_OPTIONS)
            assert result.cycles == expected.cycles
            assert result.per_cta_cycles == expected.per_cta_cycles
            assert np.array_equal(spec.args["c_ptr"].buffer.to_numpy(), c)

    def test_performance_mode_batch(self):
        device = Device(mode="performance", max_ctas_per_sm_simulated=2)
        problem = GemmProblem(M=2048, N=2048, K=512)
        args, _, _ = make_gemm_inputs(problem, device)
        spec = LaunchSpec(matmul_kernel, problem.grid, args, problem.constexprs(),
                          WS_OPTIONS, problem.flops)
        batched = device.run_many([spec, spec])
        individual, _ = run_gemm(Device(mode="performance", max_ctas_per_sm_simulated=2),
                                 problem, WS_OPTIONS)
        assert batched[0].cycles == individual.cycles
        assert batched[1].cycles == individual.cycles

    def test_empty_batch(self):
        assert Device().run_many([]) == []

    def test_compile_is_deduplicated_across_batch(self):
        device = Device(mode="functional")
        specs = self._specs(device, ks=(64, 64, 64))
        before = COUNTERS.compile_cache_misses
        device.run_many(specs)
        assert COUNTERS.compile_cache_misses == before + 1

    @needs_fork
    def test_dependent_launches_see_completed_outputs(self):
        """A later launch may consume an earlier sharded launch's output."""
        device = Device(mode="functional", workers=2)
        first = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                            block_k=32)
        args1, a, b = make_gemm_inputs(first, device)
        c_buf = args1["c_ptr"].buffer

        # Second launch: D = C @ B2^T, reading the first launch's C (128x128).
        # Grid is a single CTA, so it takes the serial path while C's workers
        # may still be running unless run_many collects them first.
        rng = np.random.default_rng(7)
        b2 = rng.standard_normal((128, 128), dtype=np.float32) * 0.5
        d_buf = device.buffer(np.zeros((128, 128), np.float32), "f16", name="D")
        args2 = {
            "a_desc": device.tensor_desc(c_buf),
            "b_desc": device.tensor_desc(b2, "f16"),
            "c_ptr": device.pointer(d_buf),
            "M": 128, "N": 128, "K": 128,
        }
        cexprs2 = {"stride_cm": 128, "stride_cn": 1, "Mt": 128, "Nt": 128,
                   "Kt": 32}
        specs = [
            LaunchSpec(matmul_kernel, first.grid, args1, first.constexprs(),
                       WS_OPTIONS),
            LaunchSpec(matmul_kernel, 1, args2, cexprs2, CompileOptions()),
        ]
        results = device.run_many(specs)
        assert len(results) == 2
        c = c_buf.to_numpy().astype(np.float32)
        expected_c = gemm_reference(a, b, first.dtype).astype(np.float32)
        np.testing.assert_allclose(c, expected_c, rtol=2e-2, atol=2e-2)
        expected_d = (c.astype(np.float16).astype(np.float32)
                      @ b2.astype(np.float16).astype(np.float32).T)
        np.testing.assert_allclose(d_buf.to_numpy().astype(np.float32),
                                   expected_d, rtol=4e-2, atol=4e-2)

    @needs_fork
    def test_failing_spec_does_not_leak_workers(self):
        """If a later spec fails to prepare, in-flight workers are aborted."""
        device = Device(mode="functional", workers=2)
        good = self._specs(device, ks=(64,))
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        args, _, _ = make_gemm_inputs(problem, device)
        del args["c_ptr"]  # missing argument -> _prepare fails at compile time
        bad = LaunchSpec(matmul_kernel, problem.grid, args, problem.constexprs(),
                         WS_OPTIONS)
        with pytest.raises(FrontendError, match="missing types"):
            device.run_many(good + [bad])
        for proc in mp.active_children():
            proc.join(timeout=5)
        assert not mp.active_children()

    def test_launch_batch_handles(self):
        device = Device(mode="functional", workers=resolve_workers(2))
        batch = device.batch()
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        args, a, b = make_gemm_inputs(problem, device)
        index = batch.add(matmul_kernel, problem.grid, args, problem.constexprs(),
                          WS_OPTIONS, problem.flops)
        assert len(batch) == 1
        results = batch.run()
        assert batch.results is results and len(results) == 1
        expected, c = run_gemm(Device(mode="functional", workers=1), problem, WS_OPTIONS)
        assert results[index].cycles == expected.cycles
        assert np.array_equal(args["c_ptr"].buffer.to_numpy(), c)


# ---------------------------------------------------------------------------
# Shared-mapping lifecycle across launches
# ---------------------------------------------------------------------------


@needs_fork
class TestSharedMappingLifecycle:
    """Sharded launches must not accumulate live MAP_SHARED mappings.

    Before the deterministic-release fix, every sharded launch left its
    buffers backed by anonymous shared mmaps until GC happened to collect
    them; a long batched sweep therefore held an unbounded number of live
    mappings.  Now the device re-privatizes every launch buffer right after
    the post-fork merge, observable through the ``parallel_shared_bytes``
    gauge in :func:`repro.perf.counters.sim_counters`.
    """

    def test_single_sharded_launch_releases_buffers(self):
        device = Device(mode="functional", workers=2)
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        args, a, b = make_gemm_inputs(problem, device)
        device.run(matmul_kernel, problem.grid, args, problem.constexprs(),
                   WS_OPTIONS)
        assert COUNTERS.parallel_launches == 1
        assert COUNTERS.parallel_shared_bytes == 0
        for value in args.values():
            if hasattr(value, "buffer"):
                assert not value.buffer.is_shared
        # ... and the worker-written outputs survived re-privatization.
        np.testing.assert_allclose(
            args["c_ptr"].buffer.to_numpy().astype(np.float32),
            gemm_reference(a, b, problem.dtype).astype(np.float32),
            rtol=2e-2, atol=2e-2)

    def test_long_batched_sweep_does_not_accumulate_mappings(self):
        """A 12-launch sharded sweep ends with zero live shared bytes."""
        device = Device(mode="functional", workers=2)
        specs = []
        for i in range(12):
            problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                                  block_k=32, seed=i)
            args, _, _ = make_gemm_inputs(problem, device)
            specs.append(LaunchSpec(matmul_kernel, problem.grid, args,
                                    problem.constexprs(), WS_OPTIONS))
        results = device.run_many(specs)
        assert len(results) == 12
        assert COUNTERS.parallel_launches == 12
        # Every launch's mappings were released as soon as it merged; none
        # wait for GC.
        assert COUNTERS.parallel_shared_bytes == 0
        for spec in specs:
            for value in spec.args.values():
                if hasattr(value, "buffer"):
                    assert not value.buffer.is_shared
                    assert value.buffer._shared_backing is None

    def test_fork_failure_releases_shared_buffers(self, monkeypatch):
        """A launch whose worker fork fails must still release its mappings.

        ``run_many`` shares buffers *before* constructing ``ParallelLaunch``;
        if the fork raises, the launch never reaches the pending slot that the
        batch-level error handler cleans up, so the release must happen on
        the spot.
        """
        import repro.gpusim.parallel as parallel_mod

        device = Device(mode="functional", workers=2)
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        args, _, _ = make_gemm_inputs(problem, device)
        spec = LaunchSpec(matmul_kernel, problem.grid, args,
                          problem.constexprs(), WS_OPTIONS)

        def failing_fork(*_a, **_k):
            raise OSError("fork: Resource temporarily unavailable")

        monkeypatch.setattr(parallel_mod, "ParallelLaunch", failing_fork)
        with pytest.raises(OSError, match="fork"):
            device.run_many([spec])
        assert COUNTERS.parallel_shared_bytes == 0
        for value in spec.args.values():
            if hasattr(value, "buffer"):
                assert not value.buffer.is_shared

    def _gemm_spec(self, device):
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        args, a, b = make_gemm_inputs(problem, device)
        return problem, args, a, b

    def test_killed_and_retried_launch_releases_buffers(self):
        """A launch that recovered via re-fork still ends with zero live bytes."""
        device = Device(mode="functional", workers=2, shard_retries=2)
        problem, args, a, b = self._gemm_spec(device)
        with faults.inject_faults("kill:worker=0,cta=0"):
            device.run(matmul_kernel, problem.grid, args, problem.constexprs(),
                       WS_OPTIONS)
        assert COUNTERS.shard_retries == 1
        assert COUNTERS.parallel_shared_bytes == 0
        for value in args.values():
            if hasattr(value, "buffer"):
                assert not value.buffer.is_shared
        np.testing.assert_allclose(
            args["c_ptr"].buffer.to_numpy().astype(np.float32),
            gemm_reference(a, b, problem.dtype).astype(np.float32),
            rtol=2e-2, atol=2e-2)

    def test_timed_out_launch_releases_buffers(self):
        """A launch that tripped the hang deadline still ends at zero bytes."""
        device = Device(mode="functional", workers=2, shard_timeout=0.4,
                        shard_retries=1)
        problem, args, a, b = self._gemm_spec(device)
        with faults.inject_faults("hang:worker=1,cta=0,seconds=60"):
            device.run(matmul_kernel, problem.grid, args, problem.constexprs(),
                       WS_OPTIONS)
        assert COUNTERS.shard_timeouts == 1
        assert COUNTERS.parallel_shared_bytes == 0
        np.testing.assert_allclose(
            args["c_ptr"].buffer.to_numpy().astype(np.float32),
            gemm_reference(a, b, problem.dtype).astype(np.float32),
            rtol=2e-2, atol=2e-2)

    def test_exhausted_retries_fallback_releases_buffers(self):
        """The serial-fallback path (worker 0 always dies) ends at zero bytes
        -- and the fallback's in-parent stores land in the shared mappings
        the surviving worker also wrote, so the output is still complete."""
        device = Device(mode="functional", workers=2, shard_retries=1)
        problem, args, a, b = self._gemm_spec(device)
        with faults.inject_faults("kill:worker=0,count=-1"):
            device.run(matmul_kernel, problem.grid, args, problem.constexprs(),
                       WS_OPTIONS)
        assert COUNTERS.shard_serial_fallbacks == 1
        assert COUNTERS.parallel_shared_bytes == 0
        for value in args.values():
            if hasattr(value, "buffer"):
                assert not value.buffer.is_shared
                assert value.buffer._shared_backing is None
        np.testing.assert_allclose(
            args["c_ptr"].buffer.to_numpy().astype(np.float32),
            gemm_reference(a, b, problem.dtype).astype(np.float32),
            rtol=2e-2, atol=2e-2)

    def test_aborted_inflight_launch_releases_buffers(self):
        """abort() on an in-flight sharded launch releases its mappings."""
        device = Device(mode="functional", workers=2)
        problem, args, _, _ = self._gemm_spec(device)
        executor = device.executor()
        prepared = executor.prepare(
            LaunchSpec(matmul_kernel, problem.grid, args, problem.constexprs(),
                       WS_OPTIONS))
        inflight = executor.submit(prepared)
        assert not inflight.done
        assert COUNTERS.parallel_shared_bytes > 0
        inflight.abort()
        assert COUNTERS.parallel_shared_bytes == 0
        for proc in mp.active_children():
            proc.join(timeout=5)

    def test_reused_buffer_across_launches_stays_correct(self):
        """Share -> release -> re-share of the same buffer keeps data intact."""
        device = Device(mode="functional", workers=2)
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        args, a, b = make_gemm_inputs(problem, device)
        specs = [
            LaunchSpec(matmul_kernel, problem.grid, args, problem.constexprs(),
                       WS_OPTIONS),
            LaunchSpec(matmul_kernel, problem.grid, args, problem.constexprs(),
                       WS_OPTIONS),
        ]
        device.run_many(specs)
        assert COUNTERS.parallel_shared_bytes == 0
        np.testing.assert_allclose(
            args["c_ptr"].buffer.to_numpy().astype(np.float32),
            gemm_reference(a, b, problem.dtype).astype(np.float32),
            rtol=2e-2, atol=2e-2)
