"""Sharded multi-process execution and the batched launch API.

The contract under test: sharding a functional launch across worker
processes is *observationally invisible* -- outputs, per-CTA cycle counts,
total cycles and utilization are bit-identical to serial execution -- and the
batched ``run_many`` / ``LaunchBatch`` API returns exactly what the same
launches would return one at a time.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.core.options import CompileOptions
from repro.frontend.errors import FrontendError
from repro.gpusim.device import Device, LaunchSpec
from repro.gpusim.engine import SimulationError
from repro.gpusim.memory import GlobalBuffer, shared_ndarray
from repro.gpusim.parallel import (
    CtaShard,
    ParallelLaunch,
    fork_available,
    resolve_workers,
    run_sharded,
    shard_cta_ids,
)
from repro.kernels.attention import AttentionProblem, run_attention
from repro.kernels.gemm import GemmProblem, gemm_reference, make_gemm_inputs, \
    matmul_kernel, run_gemm
from repro.perf.counters import COUNTERS

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires fork()")

WS_OPTIONS = CompileOptions(enable_warp_specialization=True, aref_depth=2,
                            mma_pipeline_depth=2, num_consumer_groups=2)


# ---------------------------------------------------------------------------
# Sharding primitives
# ---------------------------------------------------------------------------


class TestShardingPrimitives:
    def test_round_robin_shards_cover_all_ctas(self):
        shards = shard_cta_ids(list(range(10)), 3)
        assert [s.index for s in shards] == [0, 1, 2]
        assert shards[0].cta_ids == (0, 3, 6, 9)
        assert shards[1].cta_ids == (1, 4, 7)
        assert shards[2].cta_ids == (2, 5, 8)
        assert sorted(sum((s.cta_ids for s in shards), ())) == list(range(10))

    def test_more_workers_than_ctas_drops_empty_shards(self):
        shards = shard_cta_ids([0, 1], 4)
        assert len(shards) == 2
        assert all(s.cta_ids for s in shards)

    def test_shard_descriptor_is_picklable(self):
        import pickle

        shard = CtaShard(1, (3, 4, 5))
        assert pickle.loads(pickle.dumps(shard)) == shard

    def test_resolve_workers_explicit(self):
        expected = 3 if fork_available() else 1
        assert resolve_workers(3) == expected
        assert resolve_workers(1) == 1
        with pytest.raises(SimulationError):
            resolve_workers(-2)

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_WORKERS", "2")
        assert resolve_workers(None) == (2 if fork_available() else 1)
        monkeypatch.setenv("REPRO_SIM_WORKERS", "")
        assert resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_SIM_WORKERS", "auto")
        assert resolve_workers(None) >= 1
        monkeypatch.setenv("REPRO_SIM_WORKERS", "lots")
        with pytest.raises(SimulationError, match="REPRO_SIM_WORKERS"):
            resolve_workers(None)

    def test_device_workers_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_WORKERS", "2")
        assert Device().workers == (2 if fork_available() else 1)
        assert Device(workers=1).workers == 1


# ---------------------------------------------------------------------------
# Shared-memory buffers
# ---------------------------------------------------------------------------


class TestSharedBuffers:
    def test_make_shared_preserves_contents(self):
        data = np.arange(12, dtype=np.float32).reshape(3, 4)
        buf = GlobalBuffer.from_numpy(data, "f32", "x")
        assert not buf.is_shared
        buf.make_shared()
        assert buf.is_shared
        assert np.array_equal(buf.to_numpy(), data)
        buf.make_shared()  # idempotent
        assert buf.is_shared

    def test_make_shared_noop_in_performance_mode(self):
        buf = GlobalBuffer((4, 4), "f16", None, "sym")
        buf.make_shared()
        assert not buf.is_shared

    def test_release_shared_round_trip(self):
        data = np.arange(12, dtype=np.float32).reshape(3, 4)
        buf = GlobalBuffer.from_numpy(data, "f32", "x")
        buf.make_shared()
        assert COUNTERS.parallel_shared_bytes > 0
        buf.to_numpy()[1, 2] = 99.0  # a "worker" write into the mapping
        buf.release_shared()
        assert not buf.is_shared
        assert COUNTERS.parallel_shared_bytes == 0
        # Contents (including the in-mapping write) survive re-privatization.
        assert buf.to_numpy()[1, 2] == 99.0
        assert np.array_equal(np.delete(buf.to_numpy().ravel(), 6),
                              np.delete(data.ravel(), 6))
        buf.release_shared()  # idempotent
        assert COUNTERS.parallel_shared_bytes == 0

    def test_release_shared_closes_the_mapping(self):
        buf = GlobalBuffer.from_numpy(np.zeros((4, 4), np.float32), "f32", "x")
        buf.make_shared()
        backing = buf._shared_backing
        assert backing is not None and not backing.closed
        buf.release_shared()
        assert backing.closed
        assert buf._shared_backing is None

    def test_shared_bytes_gauge_tracks_multiple_buffers(self):
        bufs = [GlobalBuffer.from_numpy(np.zeros(64, np.float32), "f32", f"b{i}")
                for i in range(3)]
        for b in bufs:
            b.make_shared()
        live = COUNTERS.parallel_shared_bytes
        assert live >= 3 * 64 * 4
        for b in bufs:
            b.release_shared()
        assert COUNTERS.parallel_shared_bytes == 0

    @needs_fork
    def test_fork_sees_writes_to_shared_array(self):
        arr = shared_ndarray((8,), np.float32)
        arr[:] = 0.0

        def child():
            arr[3] = 42.0

        proc = mp.get_context("fork").Process(target=child)
        proc.start()
        proc.join()
        assert proc.exitcode == 0
        assert arr[3] == 42.0
        # a regular (private) array would NOT propagate the write
        private = np.zeros(8, dtype=np.float32)

        def child2():
            private[3] = 42.0

        proc = mp.get_context("fork").Process(target=child2)
        proc.start()
        proc.join()
        assert private[3] == 0.0


# ---------------------------------------------------------------------------
# ParallelLaunch mechanics
# ---------------------------------------------------------------------------


@needs_fork
class TestParallelLaunch:
    def test_merges_rows_in_launch_order(self):
        def run_cta(linear):
            return (float(linear) * 10.0, 1.0, linear)

        rows = run_sharded(run_cta, [4, 2, 7, 0], 2)
        assert rows == [(40.0, 1.0, 4), (20.0, 1.0, 2), (70.0, 1.0, 7), (0.0, 1.0, 0)]

    def test_worker_counter_deltas_are_merged(self):
        def run_cta(linear):
            COUNTERS.plan_ctas += 1
            return (1.0, 0.0, 0)

        before = COUNTERS.plan_ctas
        run_sharded(run_cta, list(range(6)), 3)
        assert COUNTERS.plan_ctas == before + 6
        assert COUNTERS.parallel_launches >= 1
        assert COUNTERS.parallel_workers_forked >= 3

    def test_worker_exception_propagates(self):
        def run_cta(linear):
            if linear == 3:
                raise ValueError("boom in CTA 3")
            return (1.0, 0.0, 0)

        with pytest.raises(SimulationError, match="boom in CTA 3"):
            run_sharded(run_cta, list(range(5)), 2)

    def test_dead_worker_is_reported(self):
        def run_cta(linear):
            os._exit(17)  # die without reporting

        with pytest.raises(SimulationError, match="exit code 17"):
            run_sharded(run_cta, [0, 1], 2)

    def test_overlapped_launches(self):
        """Two ParallelLaunches can be in flight at once (run_many pipelining)."""
        first = ParallelLaunch(lambda i: (float(i), 0.0, 0), [0, 1, 2], 2)
        second = ParallelLaunch(lambda i: (float(i) * 2, 0.0, 0), [0, 1], 2)
        assert second.wait() == [(0.0, 0.0, 0), (2.0, 0.0, 0)]
        assert first.wait() == [(0.0, 0.0, 0), (1.0, 0.0, 0), (2.0, 0.0, 0)]


# ---------------------------------------------------------------------------
# Bit-identical sharded kernel execution
# ---------------------------------------------------------------------------


@needs_fork
class TestShardedLaunchesBitIdentical:
    def _gemm(self):
        return GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64, block_k=32)

    @pytest.mark.parametrize("use_plans", [True, False],
                             ids=["plans", "interpreter"])
    def test_gemm_matches_serial(self, use_plans):
        problem = self._gemm()
        r_s, c_s = run_gemm(Device(mode="functional", use_plans=use_plans, workers=1),
                            problem, WS_OPTIONS)
        r_p, c_p = run_gemm(Device(mode="functional", use_plans=use_plans, workers=2),
                            problem, WS_OPTIONS)
        assert r_p.cycles == r_s.cycles
        assert r_p.per_cta_cycles == r_s.per_cta_cycles
        assert r_p.tensor_core_utilization == r_s.tensor_core_utilization
        assert r_p.bytes_copied == r_s.bytes_copied
        assert np.array_equal(c_p, c_s)

    def test_gemm_matches_reference(self):
        problem = self._gemm()
        device = Device(mode="functional", workers=2)
        args, a, b = make_gemm_inputs(problem, device)
        device.run(matmul_kernel, grid=problem.grid, args=args,
                   constexprs=problem.constexprs(), options=WS_OPTIONS)
        c = args["c_ptr"].buffer.to_numpy().astype(np.float32)
        np.testing.assert_allclose(
            c, gemm_reference(a, b, problem.dtype).astype(np.float32),
            rtol=2e-2, atol=2e-2)

    def test_attention_matches_serial(self):
        problem = AttentionProblem(batch=1, heads=2, seq_len=128, head_dim=64,
                                   block_m=64, block_n=64, causal=True)
        options = CompileOptions(enable_warp_specialization=True, aref_depth=2,
                                 mma_pipeline_depth=2, num_consumer_groups=2,
                                 coarse_grained_pipelining=True)
        r_s, o_s = run_attention(Device(mode="functional", workers=1), problem, options)
        r_p, o_p = run_attention(Device(mode="functional", workers=3), problem, options)
        assert r_p.cycles == r_s.cycles
        assert r_p.per_cta_cycles == r_s.per_cta_cycles
        assert np.array_equal(o_p, o_s)

    def test_persistent_gemm_matches_serial(self):
        problem = self._gemm()
        options = CompileOptions(enable_warp_specialization=True, aref_depth=2,
                                 mma_pipeline_depth=2, num_consumer_groups=2,
                                 persistent=True)
        r_s, c_s = run_gemm(Device(mode="functional", workers=1), problem, options)
        r_p, c_p = run_gemm(Device(mode="functional", workers=2), problem, options)
        assert r_p.cycles == r_s.cycles
        assert np.array_equal(c_p, c_s)

    def test_performance_mode_stays_serial(self):
        problem = GemmProblem(M=2048, N=2048, K=512)
        before = COUNTERS.parallel_launches
        device = Device(mode="performance", workers=4, max_ctas_per_sm_simulated=2)
        run_gemm(device, problem, WS_OPTIONS)
        assert COUNTERS.parallel_launches == before

    def test_trace_collection_stays_serial(self):
        problem = self._gemm()
        before = COUNTERS.parallel_launches
        device = Device(mode="functional", workers=2, collect_trace=True)
        result, _ = run_gemm(device, problem, WS_OPTIONS)
        assert COUNTERS.parallel_launches == before
        assert result.trace  # the serial path still collected a trace


# ---------------------------------------------------------------------------
# Batched launch API
# ---------------------------------------------------------------------------


class TestRunMany:
    def _specs(self, device, ks=(64, 128)):
        specs = []
        for k in ks:
            problem = GemmProblem(M=128, N=128, K=k, block_m=64, block_n=64,
                                  block_k=32)
            args, _, _ = make_gemm_inputs(problem, device)
            specs.append(LaunchSpec(matmul_kernel, problem.grid, args,
                                    problem.constexprs(), WS_OPTIONS, problem.flops))
        return specs

    @pytest.mark.parametrize("workers", [1, pytest.param(2, marks=needs_fork)])
    def test_matches_individual_launches(self, workers):
        device = Device(mode="functional", workers=workers)
        specs = self._specs(device)
        batched = device.run_many(specs)
        for k, spec, result in zip((64, 128), specs, batched):
            problem = GemmProblem(M=128, N=128, K=k, block_m=64, block_n=64,
                                  block_k=32)
            expected, c = run_gemm(Device(mode="functional", workers=1), problem, WS_OPTIONS)
            assert result.cycles == expected.cycles
            assert result.per_cta_cycles == expected.per_cta_cycles
            assert np.array_equal(spec.args["c_ptr"].buffer.to_numpy(), c)

    def test_performance_mode_batch(self):
        device = Device(mode="performance", max_ctas_per_sm_simulated=2)
        problem = GemmProblem(M=2048, N=2048, K=512)
        args, _, _ = make_gemm_inputs(problem, device)
        spec = LaunchSpec(matmul_kernel, problem.grid, args, problem.constexprs(),
                          WS_OPTIONS, problem.flops)
        batched = device.run_many([spec, spec])
        individual, _ = run_gemm(Device(mode="performance", max_ctas_per_sm_simulated=2),
                                 problem, WS_OPTIONS)
        assert batched[0].cycles == individual.cycles
        assert batched[1].cycles == individual.cycles

    def test_empty_batch(self):
        assert Device().run_many([]) == []

    def test_compile_is_deduplicated_across_batch(self):
        device = Device(mode="functional")
        specs = self._specs(device, ks=(64, 64, 64))
        before = COUNTERS.compile_cache_misses
        device.run_many(specs)
        assert COUNTERS.compile_cache_misses == before + 1

    @needs_fork
    def test_dependent_launches_see_completed_outputs(self):
        """A later launch may consume an earlier sharded launch's output."""
        device = Device(mode="functional", workers=2)
        first = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                            block_k=32)
        args1, a, b = make_gemm_inputs(first, device)
        c_buf = args1["c_ptr"].buffer

        # Second launch: D = C @ B2^T, reading the first launch's C (128x128).
        # Grid is a single CTA, so it takes the serial path while C's workers
        # may still be running unless run_many collects them first.
        rng = np.random.default_rng(7)
        b2 = rng.standard_normal((128, 128), dtype=np.float32) * 0.5
        d_buf = device.buffer(np.zeros((128, 128), np.float32), "f16", name="D")
        args2 = {
            "a_desc": device.tensor_desc(c_buf),
            "b_desc": device.tensor_desc(b2, "f16"),
            "c_ptr": device.pointer(d_buf),
            "M": 128, "N": 128, "K": 128,
        }
        cexprs2 = {"stride_cm": 128, "stride_cn": 1, "Mt": 128, "Nt": 128,
                   "Kt": 32}
        specs = [
            LaunchSpec(matmul_kernel, first.grid, args1, first.constexprs(),
                       WS_OPTIONS),
            LaunchSpec(matmul_kernel, 1, args2, cexprs2, CompileOptions()),
        ]
        results = device.run_many(specs)
        assert len(results) == 2
        c = c_buf.to_numpy().astype(np.float32)
        expected_c = gemm_reference(a, b, first.dtype).astype(np.float32)
        np.testing.assert_allclose(c, expected_c, rtol=2e-2, atol=2e-2)
        expected_d = (c.astype(np.float16).astype(np.float32)
                      @ b2.astype(np.float16).astype(np.float32).T)
        np.testing.assert_allclose(d_buf.to_numpy().astype(np.float32),
                                   expected_d, rtol=4e-2, atol=4e-2)

    @needs_fork
    def test_failing_spec_does_not_leak_workers(self):
        """If a later spec fails to prepare, in-flight workers are aborted."""
        device = Device(mode="functional", workers=2)
        good = self._specs(device, ks=(64,))
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        args, _, _ = make_gemm_inputs(problem, device)
        del args["c_ptr"]  # missing argument -> _prepare fails at compile time
        bad = LaunchSpec(matmul_kernel, problem.grid, args, problem.constexprs(),
                         WS_OPTIONS)
        with pytest.raises(FrontendError, match="missing types"):
            device.run_many(good + [bad])
        for proc in mp.active_children():
            proc.join(timeout=5)
        assert not mp.active_children()

    def test_launch_batch_handles(self):
        device = Device(mode="functional", workers=resolve_workers(2))
        batch = device.batch()
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        args, a, b = make_gemm_inputs(problem, device)
        index = batch.add(matmul_kernel, problem.grid, args, problem.constexprs(),
                          WS_OPTIONS, problem.flops)
        assert len(batch) == 1
        results = batch.run()
        assert batch.results is results and len(results) == 1
        expected, c = run_gemm(Device(mode="functional", workers=1), problem, WS_OPTIONS)
        assert results[index].cycles == expected.cycles
        assert np.array_equal(args["c_ptr"].buffer.to_numpy(), c)


# ---------------------------------------------------------------------------
# Shared-mapping lifecycle across launches
# ---------------------------------------------------------------------------


@needs_fork
class TestSharedMappingLifecycle:
    """Sharded launches must not accumulate live MAP_SHARED mappings.

    Before the deterministic-release fix, every sharded launch left its
    buffers backed by anonymous shared mmaps until GC happened to collect
    them; a long batched sweep therefore held an unbounded number of live
    mappings.  Now the device re-privatizes every launch buffer right after
    the post-fork merge, observable through the ``parallel_shared_bytes``
    gauge in :func:`repro.perf.counters.sim_counters`.
    """

    def test_single_sharded_launch_releases_buffers(self):
        device = Device(mode="functional", workers=2)
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        args, a, b = make_gemm_inputs(problem, device)
        device.run(matmul_kernel, problem.grid, args, problem.constexprs(),
                   WS_OPTIONS)
        assert COUNTERS.parallel_launches == 1
        assert COUNTERS.parallel_shared_bytes == 0
        for value in args.values():
            if hasattr(value, "buffer"):
                assert not value.buffer.is_shared
        # ... and the worker-written outputs survived re-privatization.
        np.testing.assert_allclose(
            args["c_ptr"].buffer.to_numpy().astype(np.float32),
            gemm_reference(a, b, problem.dtype).astype(np.float32),
            rtol=2e-2, atol=2e-2)

    def test_long_batched_sweep_does_not_accumulate_mappings(self):
        """A 12-launch sharded sweep ends with zero live shared bytes."""
        device = Device(mode="functional", workers=2)
        specs = []
        for i in range(12):
            problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                                  block_k=32, seed=i)
            args, _, _ = make_gemm_inputs(problem, device)
            specs.append(LaunchSpec(matmul_kernel, problem.grid, args,
                                    problem.constexprs(), WS_OPTIONS))
        results = device.run_many(specs)
        assert len(results) == 12
        assert COUNTERS.parallel_launches == 12
        # Every launch's mappings were released as soon as it merged; none
        # wait for GC.
        assert COUNTERS.parallel_shared_bytes == 0
        for spec in specs:
            for value in spec.args.values():
                if hasattr(value, "buffer"):
                    assert not value.buffer.is_shared
                    assert value.buffer._shared_backing is None

    def test_fork_failure_releases_shared_buffers(self, monkeypatch):
        """A launch whose worker fork fails must still release its mappings.

        ``run_many`` shares buffers *before* constructing ``ParallelLaunch``;
        if the fork raises, the launch never reaches the pending slot that the
        batch-level error handler cleans up, so the release must happen on
        the spot.
        """
        import repro.gpusim.parallel as parallel_mod

        device = Device(mode="functional", workers=2)
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        args, _, _ = make_gemm_inputs(problem, device)
        spec = LaunchSpec(matmul_kernel, problem.grid, args,
                          problem.constexprs(), WS_OPTIONS)

        def failing_fork(*_a, **_k):
            raise OSError("fork: Resource temporarily unavailable")

        monkeypatch.setattr(parallel_mod, "ParallelLaunch", failing_fork)
        with pytest.raises(OSError, match="fork"):
            device.run_many([spec])
        assert COUNTERS.parallel_shared_bytes == 0
        for value in spec.args.values():
            if hasattr(value, "buffer"):
                assert not value.buffer.is_shared

    def test_reused_buffer_across_launches_stays_correct(self):
        """Share -> release -> re-share of the same buffer keeps data intact."""
        device = Device(mode="functional", workers=2)
        problem = GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                              block_k=32)
        args, a, b = make_gemm_inputs(problem, device)
        specs = [
            LaunchSpec(matmul_kernel, problem.grid, args, problem.constexprs(),
                       WS_OPTIONS),
            LaunchSpec(matmul_kernel, problem.grid, args, problem.constexprs(),
                       WS_OPTIONS),
        ]
        device.run_many(specs)
        assert COUNTERS.parallel_shared_bytes == 0
        np.testing.assert_allclose(
            args["c_ptr"].buffer.to_numpy().astype(np.float32),
            gemm_reference(a, b, problem.dtype).astype(np.float32),
            rtol=2e-2, atol=2e-2)
