"""Host-side vs device-side ceil division can never disagree.

``tl.cdiv`` is one helper with two faces: on the host it executes
:func:`repro.frontend.language.host_cdiv` (the single consolidated
implementation every kernel module's grid math routes through), and inside a
kernel it lowers to ``(a + b - 1) // b`` under the simulator's
floor-division ``arith.divsi``.  These tests pin the semantics -- exact
ceiling for every integer dividend with a positive divisor -- and prove the
two faces agree by actually compiling and running a kernel that stores
``tl.cdiv(a, b)``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.options import CompileOptions
from repro.frontend import kernel, tl
from repro.frontend.language import host_cdiv
from repro.gpusim.device import Device


class TestHostCdiv:
    @pytest.mark.parametrize("b", [1, 2, 3, 5, 7, 64])
    def test_is_exact_ceiling_for_all_dividends(self, b):
        for a in range(-3 * b - 1, 3 * b + 2):
            assert host_cdiv(a, b) == math.ceil(a / b), (a, b)

    def test_negative_dividend_examples(self):
        # The pinned semantics: ceil toward +inf, not C-style truncation.
        assert host_cdiv(-7, 2) == -3
        assert host_cdiv(-1, 2) == 0
        assert host_cdiv(-8, 4) == -2

    def test_rejects_non_positive_divisors(self):
        with pytest.raises(ValueError):
            host_cdiv(4, 0)
        with pytest.raises(ValueError):
            host_cdiv(4, -2)

    def test_tl_cdiv_is_the_same_callable(self):
        # tl.cdiv on the host *is* host_cdiv -- no second implementation.
        assert tl.cdiv(7, 2) == host_cdiv(7, 2) == 4
        assert tl.cdiv._host_impl is host_cdiv

    def test_kernel_modules_have_no_private_copies(self):
        """The historical per-module ``_cdiv`` clones must stay gone."""
        import repro.kernels.attention as attention
        import repro.kernels.batched_gemm as batched_gemm
        import repro.kernels.gemm as gemm
        import repro.kernels.grouped_gemm as grouped_gemm

        for module in (gemm, batched_gemm, grouped_gemm, attention):
            assert not hasattr(module, "_cdiv"), module.__name__


@kernel
def _cdiv_probe_kernel(a, b, out_ptr):
    tl.store(out_ptr, tl.cdiv(a, b))


class TestDeviceCdiv:
    def test_device_agrees_with_host_over_signed_range(self):
        device = Device(mode="functional")
        cases = [(a, b) for b in (1, 2, 3, 5) for a in range(-9, 10)]
        for a, b in cases:
            out = np.zeros(1, dtype=np.int32)
            device.run(
                _cdiv_probe_kernel,
                grid=1,
                args={"a": a, "b": b, "out_ptr": device.pointer(out, "i32")},
                options=CompileOptions(enable_warp_specialization=False,
                                       software_pipelining=False),
            )
            assert int(out[0]) == host_cdiv(a, b), (a, b, int(out[0]))
