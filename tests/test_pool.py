"""Persistent worker-pool tests: warm reuse, arena lifecycle, supervision.

The pool contract under test (:mod:`repro.gpusim.pool`): a device bound to a
:class:`WorkerPool` produces results **bit-identical** to serial execution; a
repeated launch dispatches to already-warm workers (zero forks, zero
compiles, zero plan builds anywhere in the tree); every launch's buffers
travel through the pool's single reusable shared arena instead of per-launch
``MAP_SHARED`` churn; and supervision recovers from killed / hung /
pipe-corrupting workers by respawning only the affected worker and retrying
only its in-flight shard.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.core.options import CompileOptions
from repro.gpusim.device import Device, LaunchSpec, clear_compile_cache
from repro.gpusim.engine import SimulationError
from repro.gpusim.executors import PooledExecutor, ShardedExecutor
from repro.gpusim.memory import GlobalBuffer, Pointer, SharedArena, TensorDesc
from repro.gpusim.parallel import SupervisorConfig, fork_available
from repro.gpusim.pool import (
    DEFAULT_ARENA_BYTES,
    PoolLaunch,
    WorkerPool,
    decode_args,
    encode_args,
    get_worker_pool,
    resolve_arena_bytes,
    resolve_pool,
    shutdown_pools,
)
from repro.kernels.gemm import (
    GemmProblem,
    gemm_reference,
    make_gemm_inputs,
    matmul_kernel,
    run_gemm,
)
from repro.perf.counters import COUNTERS

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires fork()")

WS_OPTIONS = CompileOptions(enable_warp_specialization=True, aref_depth=2,
                            mma_pipeline_depth=2, num_consumer_groups=2)


def _gemm() -> GemmProblem:
    return GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64, block_k=32)


# ---------------------------------------------------------------------------
# The shared arena
# ---------------------------------------------------------------------------


class TestSharedArena:
    def test_place_and_restore_round_trip(self):
        arena = SharedArena(1 << 16)
        data = np.arange(12, dtype=np.float32).reshape(3, 4)
        buf = GlobalBuffer.from_numpy(data, "f32", "x")
        private = buf.data
        placements = arena.place_buffers([TensorDesc(buf)])
        assert placements is not None and len(placements) == 1
        assert buf.data is not private          # now an arena view
        assert arena.used >= data.nbytes
        assert np.array_equal(buf.to_numpy(), data)
        buf.to_numpy()[1, 2] = 99.0             # a "worker" write into the view
        arena.restore_buffers(placements)
        assert arena.used == 0                  # recycled for the next launch
        assert buf.data.base is None            # back in private memory
        assert buf.to_numpy()[1, 2] == 99.0     # the write survived copy-out
        arena.close()

    def test_aliased_buffers_get_one_placement(self):
        arena = SharedArena(1 << 16)
        buf = GlobalBuffer.from_numpy(np.zeros(8, np.float32), "f32", "x")
        placements = arena.place_buffers([TensorDesc(buf), Pointer(buf), buf])
        assert placements is not None and len(placements) == 1
        arena.restore_buffers(placements)
        arena.close()

    def test_oversized_launch_is_rejected_without_side_effects(self):
        arena = SharedArena(256)
        buf = GlobalBuffer.from_numpy(np.zeros(1024, np.float32), "f32", "big")
        private = buf.data
        assert arena.place_buffers([buf]) is None
        assert buf.data is private              # nothing moved
        assert arena.used == 0
        arena.close()

    def test_data_free_buffer_is_rejected(self):
        arena = SharedArena(1 << 16)
        symbolic = GlobalBuffer((4, 4), "f16", None, "sym")
        assert arena.place_buffers([symbolic]) is None
        arena.close()

    def test_close_releases_the_gauge(self):
        before = COUNTERS.parallel_shared_bytes
        arena = SharedArena(1 << 20)
        assert COUNTERS.parallel_shared_bytes == before + (1 << 20)
        arena.close()
        assert COUNTERS.parallel_shared_bytes == before
        arena.close()  # idempotent
        assert COUNTERS.parallel_shared_bytes == before
        assert arena.closed

    def test_encode_decode_round_trip_preserves_aliasing(self):
        arena = SharedArena(1 << 16)
        x = GlobalBuffer.from_numpy(np.arange(6, dtype=np.float32), "f32", "x")
        y = GlobalBuffer.from_numpy(np.ones((2, 3), np.float16), "f16", "y")
        args = {"a": TensorDesc(x), "b": Pointer(x), "c": y, "n": 6}
        placements = arena.place_buffers(list(args.values()))
        encoded = encode_args(args, placements)
        assert encoded["n"] == ("raw", 6)
        decoded = decode_args(encoded, arena)
        # Aliasing: both references to x decode to ONE buffer object.
        assert decoded["a"].buffer is decoded["b"].buffer
        assert decoded["a"].buffer is not decoded["c"]
        # Decoded views alias the placed originals through the arena.
        decoded["a"].buffer.data[3] = 42.0
        assert x.to_numpy()[3] == 42.0
        assert np.array_equal(decoded["c"].to_numpy(), y.to_numpy())
        arena.restore_buffers(placements)
        arena.close()


# ---------------------------------------------------------------------------
# Pool resolution (Device(pool=...) / REPRO_SIM_POOL / REPRO_SIM_POOL_ARENA)
# ---------------------------------------------------------------------------


class TestPoolResolution:
    def test_resolve_arena_bytes(self, monkeypatch):
        assert resolve_arena_bytes(4096) == 4096
        monkeypatch.delenv("REPRO_SIM_POOL_ARENA", raising=False)
        assert resolve_arena_bytes() == DEFAULT_ARENA_BYTES
        monkeypatch.setenv("REPRO_SIM_POOL_ARENA", "1048576")
        assert resolve_arena_bytes() == 1048576
        monkeypatch.setenv("REPRO_SIM_POOL_ARENA", "lots")
        with pytest.raises(SimulationError, match="REPRO_SIM_POOL_ARENA"):
            resolve_arena_bytes()
        with pytest.raises(SimulationError):
            resolve_arena_bytes(0)

    def test_resolve_pool_disabled_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_POOL", raising=False)
        assert resolve_pool(None) is None          # env unset
        assert resolve_pool(0) is None
        assert resolve_pool(False) is None
        for raw in ("", "0", "off", "false", "no"):
            monkeypatch.setenv("REPRO_SIM_POOL", raw)
            assert resolve_pool(None) is None
        monkeypatch.setenv("REPRO_SIM_POOL", "soon")
        with pytest.raises(SimulationError, match="REPRO_SIM_POOL"):
            resolve_pool(None)

    @needs_fork
    def test_resolve_pool_sizes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_POOL", "2")
        pool = resolve_pool(None)
        assert pool is not None and pool.size == 2
        assert resolve_pool(2) is pool             # same process-global pool
        assert resolve_pool("2") is pool
        assert resolve_pool(1) is None             # below the 2-worker floor
        assert Device(pool=2).pool is pool
        monkeypatch.setenv("REPRO_SIM_POOL", "off")
        assert Device().pool is None

    @needs_fork
    def test_explicit_pool_wins_and_closed_pools_resolve_to_none(self):
        pool = WorkerPool(2, arena_bytes=1 << 20)
        assert resolve_pool(pool) is pool
        pool.shutdown()
        assert resolve_pool(pool) is None
        device = Device(mode="functional", pool=2)
        assert device.pool is not None
        device.pool.shutdown()
        # A closed pool never reaches the executor: selection degrades.
        assert not isinstance(device.executor(), PooledExecutor)

    @needs_fork
    def test_get_worker_pool_recreates_after_shutdown(self):
        first = get_worker_pool(2)
        assert get_worker_pool(2) is first
        shutdown_pools()
        second = get_worker_pool(2)
        assert second is not first and not second.closed
        assert first.closed

    @needs_fork
    def test_pool_requires_two_workers(self):
        with pytest.raises(SimulationError, match="at least 2"):
            WorkerPool(1)

    @needs_fork
    def test_dispatch_on_closed_pool_raises(self):
        pool = WorkerPool(2, arena_bytes=1 << 20)
        pool.shutdown()
        with pytest.raises(SimulationError, match="shut-down"):
            PoolLaunch(pool, lambda i: (0.0, 0.0, 0), [0, 1], 2,
                       SupervisorConfig(), "key", object(), 2, {},
                       (None, "functional", 8, True))


# ---------------------------------------------------------------------------
# Pooled execution: selection, bit-identical results, warm reuse, fallbacks
# ---------------------------------------------------------------------------


@needs_fork
class TestPooledExecution:
    def test_device_pool_selects_pooled_executor(self):
        device = Device(mode="functional", pool=2)
        assert isinstance(device.executor(), PooledExecutor)
        assert isinstance(device.executor(), ShardedExecutor)  # fallback paths
        device.pool = None
        assert not isinstance(device.executor(), PooledExecutor)

    def test_performance_mode_never_pools(self):
        device = Device(mode="performance", pool=2)
        assert not isinstance(device.executor(), PooledExecutor)

    def test_gemm_bit_identical_to_serial(self):
        problem = _gemm()
        r_s, c_s = run_gemm(Device(mode="functional", workers=1), problem,
                            WS_OPTIONS)
        r_p, c_p = run_gemm(Device(mode="functional", pool=2), problem,
                            WS_OPTIONS)
        assert r_p.cycles == r_s.cycles
        assert r_p.per_cta_cycles == r_s.per_cta_cycles
        assert r_p.tensor_core_busy_cycles == r_s.tensor_core_busy_cycles
        assert r_p.bytes_copied == r_s.bytes_copied
        assert np.array_equal(c_p, c_s)
        assert COUNTERS.pool_launches == 1
        assert COUNTERS.pool_fallback_launches == 0
        assert COUNTERS.parallel_workers_forked == 0  # no per-launch forks

    def test_warm_workers_are_reused_across_batches(self):
        """The tentpole property: a repeated launch costs zero forks and
        zero compiles -- the warm per-worker compile/plan state survives
        across ``run_many`` batches."""
        device = Device(mode="functional", pool=2)
        problem = _gemm()

        def run_batch():
            args, _, _ = make_gemm_inputs(problem, device)
            specs = [LaunchSpec(matmul_kernel, problem.grid, args,
                                problem.constexprs(), WS_OPTIONS)]
            device.run_many(specs)
            return args["c_ptr"].buffer.to_numpy().copy()

        first = run_batch()
        assert COUNTERS.pool_workers_spawned == 2
        assert COUNTERS.pool_launches == 1
        before = (COUNTERS.pool_workers_spawned, COUNTERS.compile_passes_run,
                  COUNTERS.compile_cache_misses, COUNTERS.plan_cache_misses)
        second = run_batch()
        # Zero new forks and zero new compiles/plan builds anywhere in the
        # tree: the merged worker counter snapshots would surface any
        # worker-side miss here.
        assert COUNTERS.pool_workers_spawned == before[0]
        assert COUNTERS.pool_worker_respawns == 0
        assert COUNTERS.compile_passes_run == before[1]
        assert COUNTERS.compile_cache_misses == before[2]
        assert COUNTERS.plan_cache_misses == before[3]
        assert COUNTERS.pool_launches == 2
        np.testing.assert_array_equal(first, second)

    def test_shutdown_releases_the_arena(self):
        device = Device(mode="functional", pool=2)
        run_gemm(device, _gemm(), WS_OPTIONS)
        assert COUNTERS.parallel_shared_bytes == DEFAULT_ARENA_BYTES
        shutdown_pools()
        assert COUNTERS.parallel_shared_bytes == 0
        for proc in mp.active_children():
            proc.join(timeout=5)
        assert not mp.active_children()

    def test_launch_buffers_are_private_after_collect(self):
        """Between launches the arena is recycled and every launch buffer is
        back in private memory -- the pool equivalent of the share/release
        lifecycle tests."""
        device = Device(mode="functional", pool=2)
        problem = _gemm()
        args, a, b = make_gemm_inputs(problem, device)
        device.run(matmul_kernel, problem.grid, args, problem.constexprs(),
                   WS_OPTIONS)
        assert device.pool.arena.used == 0
        for value in args.values():
            if hasattr(value, "buffer"):
                assert value.buffer.data.base is None  # no arena view leaks
        np.testing.assert_allclose(
            args["c_ptr"].buffer.to_numpy().astype(np.float32),
            gemm_reference(a, b, problem.dtype).astype(np.float32),
            rtol=2e-2, atol=2e-2)

    def test_single_cta_launch_stays_serial(self):
        device = Device(mode="functional", pool=2)
        one_cta = GemmProblem(M=32, N=32, K=32, block_m=32, block_n=32,
                              block_k=32)
        run_gemm(device, one_cta, WS_OPTIONS)
        assert COUNTERS.pool_launches == 0
        assert COUNTERS.pool_workers_spawned == 0
        assert COUNTERS.pool_fallback_launches == 0

    def test_arena_overflow_falls_back_to_fork_per_launch(self):
        """A launch that does not fit the arena degrades to the inherited
        fork-per-launch sharded path, still bit-identical."""
        pool = WorkerPool(2, arena_bytes=4096)  # far too small for the GEMM
        problem = _gemm()
        r_s, c_s = run_gemm(Device(mode="functional", workers=1), problem,
                            WS_OPTIONS)
        r_p, c_p = run_gemm(Device(mode="functional", pool=pool), problem,
                            WS_OPTIONS)
        assert COUNTERS.pool_fallback_launches == 1
        assert COUNTERS.pool_launches == 0
        assert COUNTERS.parallel_launches == 1   # the fork-per-launch path
        assert COUNTERS.parallel_workers_forked >= 2
        assert r_p.cycles == r_s.cycles
        assert np.array_equal(c_p, c_s)
        pool.shutdown()

    def test_busy_pool_falls_back_to_fork_per_launch(self):
        pool = get_worker_pool(2)
        problem = _gemm()
        r_s, c_s = run_gemm(Device(mode="functional", workers=1), problem,
                            WS_OPTIONS)
        pool._active = sentinel = object()  # a launch in flight elsewhere
        try:
            r_p, c_p = run_gemm(Device(mode="functional", pool=pool), problem,
                                WS_OPTIONS)
        finally:
            assert pool._active is sentinel
            pool._active = None
        assert COUNTERS.pool_fallback_launches == 1
        assert r_p.cycles == r_s.cycles
        assert np.array_equal(c_p, c_s)

    def test_stale_artifact_recovers_via_respawn(self):
        """A warm worker missing a launch's artifact reports ``stale`` and
        the supervisor respawns it; the fresh fork inherits the re-pinned
        artifact and the launch completes bit-identically."""
        device = Device(mode="functional", pool=2, shard_retries=2)
        p_a = _gemm()
        # Different constexprs (block shape) => a different content
        # fingerprint; M/N/K alone are runtime arguments and would not.
        p_b = GemmProblem(M=128, N=128, K=64, block_m=32, block_n=64,
                          block_k=32)
        r_s, c_s = run_gemm(Device(mode="functional", workers=1), p_a,
                            WS_OPTIONS)
        run_gemm(device, p_a, WS_OPTIONS)        # workers warm with artifact A
        clear_compile_cache()                    # parent's in-memory tier gone
        run_gemm(device, p_b, WS_OPTIONS)        # new artifact B: epoch bump,
        #                                          respawned workers know ONLY B
        retries_before = COUNTERS.shard_retries
        clear_compile_cache()
        r_p, c_p = run_gemm(device, p_a, WS_OPTIONS)  # A again: workers are
        #                                          epoch-current but miss A
        assert COUNTERS.shard_retries == retries_before + 2  # both shards stale
        assert COUNTERS.shard_serial_fallbacks == 0
        assert r_p.cycles == r_s.cycles
        assert np.array_equal(c_p, c_s)

    def test_two_devices_share_one_process_global_pool(self):
        d1 = Device(mode="functional", pool=2)
        d2 = Device(mode="functional", pool=2)
        assert d1.pool is d2.pool
        run_gemm(d1, _gemm(), WS_OPTIONS)
        spawned = COUNTERS.pool_workers_spawned
        run_gemm(d2, _gemm(), WS_OPTIONS)        # d2 rides d1's warm workers
        assert COUNTERS.pool_workers_spawned == spawned


# ---------------------------------------------------------------------------
# Pool supervision: kill / hang / pipe recovery, worker-reported errors
# ---------------------------------------------------------------------------


@needs_fork
class TestPoolSupervision:
    def _differential(self, fault: str, **device_kw) -> None:
        problem = _gemm()
        r_s, c_s = run_gemm(Device(mode="functional", workers=1), problem,
                            WS_OPTIONS)
        with faults.inject_faults(fault):
            device = Device(mode="functional", pool=2, **device_kw)
            r_p, c_p = run_gemm(device, problem, WS_OPTIONS)
        assert r_p.cycles == r_s.cycles
        assert r_p.per_cta_cycles == r_s.per_cta_cycles
        assert r_p.bytes_copied == r_s.bytes_copied
        assert np.array_equal(c_p, c_s)

    def test_killed_worker_is_respawned_and_retried(self):
        self._differential("kill:worker=1,cta=0", shard_retries=2)
        assert COUNTERS.shard_retries == 1
        assert COUNTERS.pool_worker_respawns == 1  # only the killed worker
        assert COUNTERS.shard_serial_fallbacks == 0
        # Parent-authoritative budget: the count=1 kill consumed by the dead
        # worker is NOT re-armed for the retry.
        assert COUNTERS.faults_injected == 1

    def test_hang_that_heartbeats_times_out_and_recovers(self):
        self._differential("hang:worker=0,cta=0,seconds=60",
                           shard_timeout=0.5, shard_retries=2)
        assert COUNTERS.shard_timeouts == 1
        assert COUNTERS.shard_retries == 1
        assert COUNTERS.pool_worker_respawns == 1
        assert COUNTERS.faults_injected == 1

    def test_pipe_corruption_is_retried(self):
        self._differential("pipe:worker=1", shard_retries=2)
        assert COUNTERS.shard_retries == 1
        assert COUNTERS.pool_worker_respawns == 1
        assert COUNTERS.faults_injected == 1

    def test_exhausted_retries_fall_back_serially(self):
        self._differential("kill:worker=0,count=-1", shard_retries=1)
        assert COUNTERS.shard_retries == 1
        assert COUNTERS.shard_serial_fallbacks == 1
        assert COUNTERS.faults_injected == 2     # both attempts died

    def test_kill_mid_batch_is_bit_identical(self):
        """Chaos across a pipelined batch: one worker killed mid-stream, the
        whole batch still matches serial bit-for-bit and the pool stays
        warm for a follow-up launch."""
        problems = [GemmProblem(M=128, N=128, K=64, block_m=64, block_n=64,
                                block_k=32, seed=i) for i in range(3)]

        def run_batch(device):
            all_args = []
            specs = []
            for problem in problems:
                args, _, _ = make_gemm_inputs(problem, device)
                all_args.append(args)
                specs.append(LaunchSpec(matmul_kernel, problem.grid, args,
                                        problem.constexprs(), WS_OPTIONS))
            results = device.run_many(specs)
            return results, [a["c_ptr"].buffer.to_numpy().copy()
                             for a in all_args]

        serial_results, serial_cs = run_batch(Device(mode="functional",
                                                     workers=1))
        with faults.inject_faults("kill:worker=1,cta=0"):
            device = Device(mode="functional", pool=2, shard_retries=2)
            pooled_results, pooled_cs = run_batch(device)
        assert COUNTERS.faults_injected == 1
        assert COUNTERS.shard_retries == 1
        assert COUNTERS.pool_worker_respawns == 1
        for r_s, r_p, c_s, c_p in zip(serial_results, pooled_results,
                                      serial_cs, pooled_cs):
            assert r_p.cycles == r_s.cycles
            assert r_p.per_cta_cycles == r_s.per_cta_cycles
            assert np.array_equal(c_p, c_s)
        # The pool survived the chaos warm: a clean follow-up launch neither
        # forks nor respawns.
        spawned = COUNTERS.pool_workers_spawned
        run_gemm(device, problems[0], WS_OPTIONS)
        assert COUNTERS.pool_workers_spawned == spawned

    def test_worker_reported_error_keeps_the_pool_warm(self):
        """A deterministic in-worker exception aborts the launch (no retry)
        but does not poison the pool."""
        pool = get_worker_pool(2)
        device = Device(mode="functional", pool=pool)
        problem = _gemm()
        executor = device.executor()
        assert isinstance(executor, PooledExecutor)
        args, _, _ = make_gemm_inputs(problem, device)
        prepared = executor.prepare(
            LaunchSpec(matmul_kernel, problem.grid, args, problem.constexprs(),
                       WS_OPTIONS))
        placements = pool.arena.place_buffers(list(prepared.spec.args.values()))
        encoded = encode_args(prepared.spec.args, placements)
        del encoded["c_ptr"]  # the work item ships a broken argument set
        launched = PoolLaunch(
            pool, executor.cta_runner(prepared), prepared.cta_ids,
            executor.pool_workers(prepared), executor.supervisor_config(),
            prepared.compiled.fingerprint, prepared.compiled,
            prepared.spec.grid, encoded, executor.settings_state())
        with pytest.raises(SimulationError, match="pooled execution failed"):
            launched.wait()
        pool.arena.restore_buffers(placements)
        assert not pool.busy
        assert COUNTERS.shard_retries == 0       # deterministic: no retry
        assert COUNTERS.shard_serial_fallbacks == 0
        # The pool is immediately reusable for a clean launch.
        r_s, c_s = run_gemm(Device(mode="functional", workers=1), problem,
                            WS_OPTIONS)
        r_p, c_p = run_gemm(device, problem, WS_OPTIONS)
        assert r_p.cycles == r_s.cycles
        assert np.array_equal(c_p, c_s)


# ---------------------------------------------------------------------------
# Thread safety: process-global resolution, atomic claim, concurrent dispatch
# ---------------------------------------------------------------------------


@needs_fork
class TestPoolThreadSafety:
    def test_get_worker_pool_races_to_one_instance(self, monkeypatch):
        """8 threads resolving the process-global pool through a slowed
        constructor still get one shared instance (the double-checked
        ``_POOLS_GUARD`` path), not 8 racing pools."""
        real_init = WorkerPool.__init__

        def slow_init(self, *args, **kwargs):
            time.sleep(0.05)  # widen the check-then-create window
            real_init(self, *args, **kwargs)

        monkeypatch.setattr(WorkerPool, "__init__", slow_init)
        barrier = threading.Barrier(8)
        pools: list = [None] * 8

        def resolve(i: int) -> None:
            barrier.wait()
            pools[i] = get_worker_pool(2)

        threads = [threading.Thread(target=resolve, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(pool is pools[0] for pool in pools)

    def test_claim_is_atomic_and_identity_checked(self):
        pool = get_worker_pool(2)
        first, second = object(), object()
        assert pool.try_claim(first)
        assert not pool.try_claim(second)       # held: atomically refused
        pool.release(second)                    # non-owner release: no-op
        assert not pool.try_claim(second)       # first still owns the pool
        pool.adopt_claim(first, second)         # ownership handoff
        with pytest.raises(SimulationError, match="claim lost"):
            pool.adopt_claim(first, object())   # stale owner cannot adopt
        pool.release(second)
        assert pool.try_claim(first)            # fully released, reusable
        pool.release(first)

    def test_busy_pool_counts_rejection_and_falls_back(self):
        """A claimed pool rejects a second dispatch as queue pressure --
        ``pool_busy_rejections`` (new, distinct) plus the catch-all
        ``pool_fallback_launches`` -- and the launch completes via the
        inherited fork-per-launch path."""
        device = Device(mode="functional", pool=2)
        problem = _gemm()
        r_ref, c_ref = run_gemm(device, problem, WS_OPTIONS)  # warm the pool
        assert COUNTERS.pool_busy_rejections == 0
        fallbacks = COUNTERS.pool_fallback_launches

        holder = object()
        assert device.pool.try_claim(holder)
        r_busy, c_busy = run_gemm(device, problem, WS_OPTIONS)
        assert COUNTERS.pool_busy_rejections == 1
        assert COUNTERS.pool_fallback_launches == fallbacks + 1
        assert r_busy.cycles == r_ref.cycles
        assert np.array_equal(c_busy, c_ref)

        device.pool.release(holder)
        run_gemm(device, problem, WS_OPTIONS)   # pool dispatch again
        assert COUNTERS.pool_busy_rejections == 1  # no new rejection

    def test_concurrent_dispatch_over_one_pool_is_safe(self):
        """Two threads dispatching over one process-global pool (the serve
        dispatch thread racing a direct caller): one claims the pool, the
        loser falls back to fork-per-launch -- no SimulationError, both
        results bit-identical.  Regression for the check-then-act race on
        ``pool.busy``."""
        device = Device(mode="functional", pool=2)
        problem = _gemm()
        r_ref, c_ref = run_gemm(device, problem, WS_OPTIONS)  # warm + compile
        barrier = threading.Barrier(2)
        outcomes: list = [None, None]

        def dispatch(i: int) -> None:
            barrier.wait()
            outcomes[i] = run_gemm(device, problem, WS_OPTIONS)

        threads = [threading.Thread(target=dispatch, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for result, c_out in outcomes:  # None here means a thread crashed
            assert result.cycles == r_ref.cycles
            assert result.per_cta_cycles == r_ref.per_cta_cycles
            assert np.array_equal(c_out, c_ref)
