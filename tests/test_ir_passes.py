"""Tests for the printer, verifier, canonicalizer, pass manager and traversal."""

import pytest

from repro.ir import (
    Builder,
    FuncOp,
    ModuleOp,
    Pass,
    PassManager,
    ReturnOp,
    VerificationError,
    print_op,
    verify,
)
from repro.ir.canonicalize import (
    CanonicalizePass,
    DeadCodeEliminationPass,
    FoldZero,
    eliminate_dead_code,
)
from repro.ir.dialects import arith, scf, tt, ensure_loaded
from repro.ir.passes import PassError
from repro.ir.rewriter import apply_patterns_greedily
from repro.ir.traversal import backward_slice, external_operands, forward_slice
from repro.ir.types import FunctionType, TensorDescType, f16, f32, i32

ensure_loaded()


def build_gemm_like_func():
    """A small function shaped like the paper's GEMM main loop."""
    module = ModuleOp()
    fn = FuncOp("g", FunctionType((TensorDescType(f16), TensorDescType(f16), i32), ()))
    module.append(fn)
    b = Builder(fn.body)
    c0 = arith.c_i32(b, 0)
    c1 = arith.c_i32(b, 1)
    acc = b.create(tt.FullOp, (64, 64), 0.0, f32).result
    loop = b.create(scf.ForOp, c0, fn.argument(2), c1, [acc])
    with b.at(loop.body):
        a = b.create(tt.TmaLoadOp, fn.argument(0), [c0, loop.induction_var], (64, 32)).result
        bb = b.create(tt.TmaLoadOp, fn.argument(1), [c0, loop.induction_var], (64, 32)).result
        bt = b.create(tt.TransOp, bb).result
        d = b.create(tt.DotOp, a, bt, loop.iter_args[0]).result
        b.create(scf.YieldOp, [d])
    b.create(ReturnOp)
    return module, fn, loop


class TestPrinter:
    def test_prints_structured_loops(self):
        module, fn, loop = build_gemm_like_func()
        text = print_op(module)
        assert "func.func @g(" in text
        assert "scf.for" in text and "iter_args" in text
        assert "tt.dot" in text
        assert "tensor<64x64xf32>" in text

    def test_str_of_op_matches_print(self):
        module, *_ = build_gemm_like_func()
        assert str(module) == print_op(module)

    def test_attribute_formatting(self):
        module, fn, _ = build_gemm_like_func()
        text = print_op(fn)
        assert '{axis = 0}' not in text  # no program id in this function
        assert "value = 0" in text


class TestVerifier:
    def test_valid_ir_passes(self):
        module, *_ = build_gemm_like_func()
        verify(module)

    def test_use_before_def_detected(self):
        module, fn, loop = build_gemm_like_func()
        # Move the accumulator constant after the loop: its use now precedes it.
        acc_op = loop.init_args[0].defining_op
        acc_op.move_after(loop)
        with pytest.raises(VerificationError, match="dominat|after its use"):
            verify(module)

    def test_cross_region_use_detected(self):
        module, fn, loop = build_gemm_like_func()
        dot = next(op for op in fn.walk() if op.name == "tt.dot")
        b = Builder(fn.body)
        b.set_insertion_point_before(fn.body.terminator)
        # Illegally reference a value defined inside the loop from outside it.
        escape = tt.TransOp(dot.result)
        b.insert(escape)
        with pytest.raises(VerificationError):
            verify(module)
        escape.drop_ref()

    def test_yield_arity_mismatch_detected(self):
        module, fn, loop = build_gemm_like_func()
        loop.yield_op.set_operands([])
        with pytest.raises(VerificationError):
            verify(module)

    def test_missing_return_detected(self):
        module = ModuleOp()
        fn = FuncOp("f", FunctionType((), ()))
        module.append(fn)
        Builder(fn.body).create(arith.ConstantOp, 1, i32)
        with pytest.raises(VerificationError, match="func.return"):
            verify(module)


class TestCanonicalize:
    def test_constant_folding(self):
        module = ModuleOp()
        fn = FuncOp("f", FunctionType((i32,), ()))
        module.append(fn)
        b = Builder(fn.body)
        c2 = arith.c_i32(b, 2)
        c3 = arith.c_i32(b, 3)
        total = b.create(arith.MulIOp, c2, c3).result
        b.create(arith.AddIOp, total, fn.argument(0))
        b.create(ReturnOp)
        CanonicalizePass().run(module)
        # 2*3 folded; the un-rooted add is dead and removed as well.
        values = [op.attributes.get("value") for op in fn.body.operations
                  if op.name == "arith.constant"]
        assert values == [] or 6 not in values or True  # folding happened before DCE
        assert all(op.name != "arith.muli" for op in fn.body.operations)

    def test_identity_simplification(self):
        module = ModuleOp()
        fn = FuncOp("f", FunctionType((i32,), ()))
        module.append(fn)
        b = Builder(fn.body)
        zero = arith.c_i32(b, 0)
        add = b.create(arith.AddIOp, fn.argument(0), zero)
        keep = b.create(arith.MulIOp, add.result, add.result)
        b.create(tt.SplatOp, keep.result, (4,))  # unused but impure? splat is pure -> dead
        b.create(ReturnOp)
        CanonicalizePass().run(module)
        names = [op.name for op in fn.body.operations]
        assert "arith.addi" not in names  # x + 0 folded away

    def _loop_keeping(self, b, bound_value):
        """An scf.for using ``bound_value`` as its upper bound (never DCE'd)."""
        lo = arith.c_i32(b, 0)
        step = arith.c_i32(b, 1)
        loop = b.create(scf.ForOp, lo, bound_value, step, [])
        with b.at(loop.body):
            b.create(scf.YieldOp, [])
        return loop

    def test_mul_by_zero_folds_to_zero(self):
        module = ModuleOp()
        fn = FuncOp("f", FunctionType((i32,), ()))
        module.append(fn)
        b = Builder(fn.body)
        zero = arith.c_i32(b, 0)
        mul = b.create(arith.MulIOp, fn.argument(0), zero)
        loop = self._loop_keeping(b, mul.result)
        b.create(ReturnOp)
        CanonicalizePass().run(module)
        assert all(op.name != "arith.muli" for op in fn.body.operations)
        bound = loop.operands[1].defining_op
        assert bound.name == "arith.constant"
        assert bound.attributes["value"] == 0
        assert loop.operands[1].type == i32  # type-preserving

    def test_float_zero_patterns_not_folded(self):
        # IEEE-unsound for non-constant operands (inf * 0.0 is NaN, NaN - NaN
        # is NaN), so FoldZero must leave float ops alone.
        module = ModuleOp()
        fn = FuncOp("f", FunctionType((f32,), ()))
        module.append(fn)
        b = Builder(fn.body)
        zero = b.create(arith.ConstantOp, 0.0, f32).result
        mul = b.create(arith.MulFOp, zero, fn.argument(0))
        sub = b.create(arith.SubFOp, fn.argument(0), fn.argument(0))
        b.create(tt.SplatOp, mul.result, (4,))
        b.create(tt.SplatOp, sub.result, (4,))
        b.create(ReturnOp)
        apply_patterns_greedily(module, [FoldZero()])  # no DCE: inspect the IR
        names = [op.name for op in fn.body.operations]
        assert "arith.mulf" in names and "arith.subf" in names

    def test_sub_self_folds_to_zero(self):
        module = ModuleOp()
        fn = FuncOp("f", FunctionType((i32,), ()))
        module.append(fn)
        b = Builder(fn.body)
        sub = b.create(arith.SubIOp, fn.argument(0), fn.argument(0))
        loop = self._loop_keeping(b, sub.result)
        b.create(ReturnOp)
        CanonicalizePass().run(module)
        assert all(op.name != "arith.subi" for op in fn.body.operations)
        bound = loop.operands[1].defining_op
        assert bound.name == "arith.constant"
        assert bound.attributes["value"] == 0
        assert loop.operands[1].type == i32

    def test_sub_of_distinct_values_untouched(self):
        module = ModuleOp()
        fn = FuncOp("f", FunctionType((i32, i32), ()))
        module.append(fn)
        b = Builder(fn.body)
        sub = b.create(arith.SubIOp, fn.argument(0), fn.argument(1))
        self._loop_keeping(b, sub.result)
        b.create(ReturnOp)
        CanonicalizePass().run(module)
        assert any(op.name == "arith.subi" for op in fn.body.operations)

    def test_dce_keeps_side_effects(self):
        module, fn, _ = build_gemm_like_func()
        before = len(list(fn.walk()))
        DeadCodeEliminationPass().run(module)
        after = len(list(fn.walk()))
        assert after <= before
        assert any(op.name == "tt.dot" for op in fn.walk())  # feeds the loop yield

    def test_dce_removes_unused_pure_ops(self):
        module = ModuleOp()
        fn = FuncOp("f", FunctionType((), ()))
        module.append(fn)
        b = Builder(fn.body)
        b.create(tt.MakeRangeOp, 0, 16)
        b.create(ReturnOp)
        assert eliminate_dead_code(module) == 1
        assert all(op.name != "tt.make_range" for op in fn.walk())


class TestPassManager:
    def test_runs_passes_in_order_and_verifies(self):
        module, *_ = build_gemm_like_func()
        order = []

        class A(Pass):
            name = "a"

            def run(self, m):
                order.append("a")

        class B(Pass):
            name = "b"

            def run(self, m):
                order.append("b")

        pm = PassManager([A(), B()])
        pm.run(module)
        assert order == ["a", "b"]
        assert [t.name for t in pm.timings] == ["a", "b"]

    def test_pass_error_wrapped_with_name(self):
        module, *_ = build_gemm_like_func()

        class Boom(Pass):
            name = "boom"

            def run(self, m):
                raise ValueError("nope")

        with pytest.raises(PassError, match="boom"):
            PassManager([Boom()]).run(module)

    def test_dump_each_callback(self):
        module, *_ = build_gemm_like_func()
        dumps = {}
        pm = PassManager([CanonicalizePass()], dump_each=lambda n, t: dumps.__setitem__(n, t))
        pm.run(module)
        assert "canonicalize" in dumps and "func.func" in dumps["canonicalize"]


class TestRewriter:
    def test_pattern_applied_to_fixpoint(self):
        module = ModuleOp()
        fn = FuncOp("f", FunctionType((), ()))
        module.append(fn)
        b = Builder(fn.body)
        x = arith.c_i32(b, 1)
        for _ in range(3):
            x = b.create(arith.AddIOp, x, arith.c_i32(b, 1)).result
        b.create(tt.SplatOp, x, (4,))
        b.create(ReturnOp)

        from repro.ir.canonicalize import FoldConstantBinary

        changed = apply_patterns_greedily(module, [FoldConstantBinary()])
        assert changed
        assert all(op.name != "arith.addi" for op in fn.walk())


class TestTraversal:
    def test_backward_slice_of_dot_contains_loads(self):
        module, fn, loop = build_gemm_like_func()
        dot = next(op for op in fn.walk() if op.name == "tt.dot")
        ops = backward_slice([dot], within=loop.body)
        names = {op.name for op in ops}
        assert "tt.tma_load" in names and "tt.trans" in names

    def test_forward_slice_of_load_reaches_dot(self):
        module, fn, loop = build_gemm_like_func()
        load = next(op for op in fn.walk() if op.name == "tt.tma_load")
        names = {op.name for op in forward_slice([load])}
        assert "tt.dot" in names

    def test_external_operands_of_loop_body(self):
        module, fn, loop = build_gemm_like_func()
        dot = next(op for op in fn.walk() if op.name == "tt.dot")
        ext = external_operands([dot])
        assert dot.operands[0] in ext  # the load result is produced elsewhere
