"""End-to-end functional correctness of GEMM (and variants) across every
compilation path, checked against NumPy references."""

import pytest

from repro.core.options import CompileOptions, NAIVE_OPTIONS, TRITON_BASELINE_OPTIONS
from repro.gpusim.device import Device
from repro.kernels.batched_gemm import BatchedGemmProblem, check_batched_gemm
from repro.kernels.gemm import GemmProblem, check_gemm
from repro.kernels.grouped_gemm import GroupedGemmProblem, check_grouped_gemm


@pytest.fixture(scope="module")
def device():
    return Device(mode="functional")


SMALL = GemmProblem(M=128, N=128, K=128, block_m=64, block_n=64, block_k=32)


class TestGemmCompilationPaths:
    @pytest.mark.parametrize("options, label", [
        (NAIVE_OPTIONS, "naive"),
        (TRITON_BASELINE_OPTIONS, "cp.async software pipeline"),
        (CompileOptions(lower_to="tawa"), "mid-level aref interpretation"),
        (CompileOptions(), "warp specialized (default D=2, P=2)"),
        (CompileOptions(aref_depth=3, mma_pipeline_depth=2), "deep aref ring"),
        (CompileOptions(aref_depth=3, mma_pipeline_depth=3), "deep MMA pipeline"),
        (CompileOptions(aref_depth=1, mma_pipeline_depth=1), "single-slot channel"),
        (CompileOptions(num_consumer_groups=2), "cooperative consumers"),
        (CompileOptions(persistent=True), "persistent"),
        (CompileOptions(persistent=True, num_consumer_groups=2, aref_depth=3),
         "persistent + cooperative + D=3"),
        (CompileOptions(fine_grained_pipelining=False), "pipelining disabled"),
    ], ids=lambda v: v if isinstance(v, str) else "")
    def test_gemm_matches_numpy(self, device, options, label):
        check_gemm(device, SMALL, options)

    def test_non_square_and_non_divisible_sizes(self, device):
        problem = GemmProblem(M=96, N=160, K=64, block_m=32, block_n=64, block_k=32)
        check_gemm(device, problem, CompileOptions())

    def test_single_k_iteration(self, device):
        problem = GemmProblem(M=64, N=64, K=32, block_m=32, block_n=32, block_k=32)
        check_gemm(device, problem, CompileOptions())

    def test_fp8_inputs(self, device):
        problem = GemmProblem(M=64, N=64, K=64, dtype="f8e4m3",
                              block_m=32, block_n=32, block_k=32)
        check_gemm(device, problem, CompileOptions())

    def test_results_deterministic_across_runs(self, device):
        from repro.kernels.gemm import run_gemm

        r1, c1 = run_gemm(device, SMALL, CompileOptions())
        r2, c2 = run_gemm(device, SMALL, CompileOptions())
        assert (c1 == c2).all()
        assert r1.cycles == pytest.approx(r2.cycles)


class TestGemmVariants:
    @pytest.mark.parametrize("options", [
        TRITON_BASELINE_OPTIONS,
        CompileOptions(),
        CompileOptions(num_consumer_groups=2),
    ], ids=["triton", "tawa", "tawa-coop"])
    def test_batched_gemm_matches_numpy(self, device, options):
        problem = BatchedGemmProblem(batch=2, M=64, N=64, K=64,
                                     block_m=32, block_n=32, block_k=32)
        check_batched_gemm(device, problem, options)

    @pytest.mark.parametrize("options", [
        TRITON_BASELINE_OPTIONS,
        CompileOptions(),
    ], ids=["triton", "tawa"])
    def test_grouped_gemm_matches_numpy(self, device, options):
        problem = GroupedGemmProblem(group_ms=[64, 128], N=64, K=64,
                                     block_m=32, block_n=32, block_k=32)
        check_grouped_gemm(device, problem, options)

    def test_grouped_gemm_tile_table_covers_all_rows(self):
        problem = GroupedGemmProblem(group_ms=[96, 64], N=64, K=64,
                                     block_m=32, block_n=32, block_k=32)
        rows, bns, cns = problem.tile_table()
        assert len(rows) == problem.grid
        assert rows.max() < problem.total_m
        assert bns.max() < problem.num_groups * problem.N
