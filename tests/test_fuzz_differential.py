"""Differential fuzzing: interpreter vs. plans vs. sharded vs. pooled vs. codegen.

Randomized small kernels and grids (seeded, so every CI run reproduces the
same cases) are executed through the simulator's five functional execution
paths:

* the IR interpreter (``use_plans=False``) -- the semantics oracle,
* compile-once execution plans (``use_plans=True``),
* sharded multi-process execution (``workers=2`` on top of plans),
* persistent-pool execution (``pool=2``: long-lived workers and the
  reusable shared arena, :mod:`repro.gpusim.pool`), and
* vectorized codegen (``codegen=True``: one generated NumPy batch call per
  launch, :mod:`repro.gpusim.codegen`, falling back to plans for kernels the
  emitter cannot vectorize -- the fallback path is differential-tested too),

and the results must agree **bit-for-bit**: output buffers (compared as raw
bytes), total cycles, per-CTA cycle lists, tensor-core utilization and bytes
copied.

Two kernel families are fuzzed:

* *elementwise* -- a pointer/load/store kernel whose arithmetic structure
  (two constexpr-selected op slots), block size, element count and grid are
  randomized; exercises masked tt.load/tt.store, tt.where and scalar
  control flow.
* *gemm* -- the paper's GEMM with randomized problem/tile sizes and a
  randomized compilation path (warp-specialized, persistent, Triton-style,
  naive); exercises TMA, arefs, WGMMA and every pipeline lowering.
* *rowop* -- randomized per-row reduction kernels (softmax, mean-centering,
  RMS normalization, max-shift) over ragged masked rows; exercises the
  ``tl.max`` / ``tl.sum`` / ``tl.exp`` / ``tl.rsqrt`` surface the softmax
  and LayerNorm workloads are built from.
* *splitk* -- the split-K GEMM **two-launch pipeline** (partial products +
  reduction epilogue) with randomized split counts and tile shapes,
  submitted through ``Device.run_many``; exercises cross-launch buffer
  reuse under sharding and the reduction-epilogue accumulation order.
* *chaos* -- a seeded GEMM case with **one random injected fault**
  (worker kill, worker hang or pipe corruption, via :mod:`repro.faults`)
  per iteration: the sharded launch -- and the pooled launch, where the
  same fault respawns a persistent worker instead of re-forking -- must
  recover (retry, or degrade to the in-process serial fallback) and still
  produce an :class:`Observation` bit-identical to the serial plans engine.

On failure the harness *shrinks* the case (halving sizes, simplifying ops
and options) and reports the smallest configuration that still disagrees,
plus the seed to reproduce it.

Environment knobs: ``REPRO_FUZZ_CASES`` (cases per family, default 5),
``REPRO_FUZZ_SEED`` (base seed, default 20260726).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro import faults
from repro.core.options import CompileOptions, NAIVE_OPTIONS, TRITON_BASELINE_OPTIONS
from repro.frontend import kernel, tl
from repro.gpusim.device import Device
from repro.kernels.gemm import GemmProblem, make_gemm_inputs, matmul_kernel
from repro.kernels.splitk_gemm import SplitKGemmProblem, run_splitk_gemm

BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260726"))
CASES_PER_FAMILY = int(os.environ.get("REPRO_FUZZ_CASES", "5"))
MAX_SHRINK_STEPS = 24

ENGINES = ("interpreter", "plans", "sharded", "pooled", "codegen")


def _device(engine: str) -> Device:
    if engine == "interpreter":
        return Device(mode="functional", use_plans=False, workers=1)
    if engine == "plans":
        return Device(mode="functional", use_plans=True, workers=1)
    if engine == "sharded":
        return Device(mode="functional", use_plans=True, workers=2)
    if engine == "codegen":
        return Device(mode="functional", use_plans=True, workers=1, codegen=True)
    return Device(mode="functional", use_plans=True, workers=1, pool=2)


@dataclass(frozen=True)
class Observation:
    """Everything an execution path produces, in comparable form."""

    output: bytes
    cycles: float
    per_cta_cycles: tuple[float, ...]
    utilization: float
    bytes_copied: int

    def diff(self, other: "Observation") -> list[str]:
        mismatches = []
        if self.output != other.output:
            mismatches.append("output bytes")
        if self.cycles != other.cycles:
            mismatches.append(f"cycles ({self.cycles} vs {other.cycles})")
        if self.per_cta_cycles != other.per_cta_cycles:
            mismatches.append("per-CTA cycles")
        if self.utilization != other.utilization:
            mismatches.append("tensor-core utilization")
        if self.bytes_copied != other.bytes_copied:
            mismatches.append("bytes copied")
        return mismatches


# ---------------------------------------------------------------------------
# Family 1: randomized elementwise kernels
# ---------------------------------------------------------------------------


@kernel
def _fuzz_elementwise_kernel(x_ptr, y_ptr, out_ptr, n,
                             OP1: tl.constexpr, OP2: tl.constexpr,
                             BLOCK: tl.constexpr):
    """Structure-randomized elementwise kernel (two constexpr op slots)."""
    pid = tl.program_id(axis=0)
    offs = pid * BLOCK + tl.arange(0, BLOCK)
    mask = offs < n
    x = tl.load(x_ptr + offs, mask=mask, other=0.0)
    y = tl.load(y_ptr + offs, mask=mask, other=0.0)
    if OP1 == 0:
        r = x + y
    elif OP1 == 1:
        r = x * y
    elif OP1 == 2:
        r = tl.maximum(x, y)
    else:
        r = x - y
    if OP2 == 0:
        r = r + x
    elif OP2 == 1:
        r = tl.where(r > 0.0, r, x)
    elif OP2 == 2:
        r = tl.minimum(r, y)
    # OP2 == 3: identity (shorter op chain)
    tl.store(out_ptr + offs, r, mask=mask)


_EW_OPTIONS = [CompileOptions(), TRITON_BASELINE_OPTIONS, NAIVE_OPTIONS]


@dataclass(frozen=True)
class ElementwiseCase:
    n: int
    block: int
    op1: int
    op2: int
    options_index: int
    data_seed: int

    def describe(self) -> str:
        return (f"elementwise(n={self.n}, block={self.block}, op1={self.op1}, "
                f"op2={self.op2}, options={self.options_index}, "
                f"data_seed={self.data_seed})")

    @classmethod
    def random(cls, rng: np.random.Generator) -> "ElementwiseCase":
        block = int(rng.choice([16, 32, 64, 128]))
        # Bias towards a ragged final block so masked stores are exercised.
        blocks = int(rng.integers(1, 7))
        n = block * blocks - (int(rng.integers(1, block)) if rng.random() < 0.7 else 0)
        return cls(
            n=max(1, n),
            block=block,
            op1=int(rng.integers(0, 4)),
            op2=int(rng.integers(0, 4)),
            options_index=int(rng.integers(0, len(_EW_OPTIONS))),
            data_seed=int(rng.integers(0, 2**31)),
        )

    def execute(self, engine: str) -> Observation:
        device = _device(engine)
        rng = np.random.default_rng(self.data_seed)
        x = rng.standard_normal(self.n, dtype=np.float32)
        y = rng.standard_normal(self.n, dtype=np.float32)
        args = {
            "x_ptr": device.pointer(x, "f32"),
            "y_ptr": device.pointer(y, "f32"),
            "out_ptr": device.pointer(np.zeros(self.n, np.float32), "f32"),
            "n": self.n,
        }
        result = device.run(
            _fuzz_elementwise_kernel,
            grid=-(-self.n // self.block),
            args=args,
            constexprs={"OP1": self.op1, "OP2": self.op2, "BLOCK": self.block},
            options=_EW_OPTIONS[self.options_index],
        )
        return Observation(
            output=args["out_ptr"].buffer.to_numpy().tobytes(),
            cycles=result.cycles,
            per_cta_cycles=tuple(result.per_cta_cycles),
            utilization=result.tensor_core_utilization,
            bytes_copied=result.bytes_copied,
        )

    def shrink_candidates(self) -> list["ElementwiseCase"]:
        out = []
        if self.n > 1:
            out.append(dataclasses.replace(self, n=max(1, self.n // 2)))
        if self.block > 16:
            out.append(dataclasses.replace(self, block=self.block // 2))
        if self.op1 != 3:
            out.append(dataclasses.replace(self, op1=3))
        if self.op2 != 3:
            out.append(dataclasses.replace(self, op2=3))
        if self.options_index != 0:
            out.append(dataclasses.replace(self, options_index=0))
        return out


# ---------------------------------------------------------------------------
# Family 2: randomized GEMM problems and compilation paths
# ---------------------------------------------------------------------------


_GEMM_OPTIONS = [
    CompileOptions(),
    CompileOptions(enable_warp_specialization=True, aref_depth=2,
                   mma_pipeline_depth=2, num_consumer_groups=2),
    CompileOptions(enable_warp_specialization=True, aref_depth=3,
                   mma_pipeline_depth=2, num_consumer_groups=2, persistent=True),
    CompileOptions(enable_warp_specialization=True, aref_depth=2,
                   mma_pipeline_depth=1, num_consumer_groups=1),
    TRITON_BASELINE_OPTIONS,
    NAIVE_OPTIONS,
]


@dataclass(frozen=True)
class GemmCase:
    m_blocks: int
    n_blocks: int
    k_steps: int
    block_m: int
    block_n: int
    block_k: int
    options_index: int
    data_seed: int

    def describe(self) -> str:
        return (f"gemm(M={self.m_blocks}x{self.block_m}, "
                f"N={self.n_blocks}x{self.block_n}, K={self.k_steps}x{self.block_k}, "
                f"options={self.options_index}, data_seed={self.data_seed})")

    @classmethod
    def random(cls, rng: np.random.Generator) -> "GemmCase":
        return cls(
            m_blocks=int(rng.integers(1, 4)),
            n_blocks=int(rng.integers(1, 4)),
            k_steps=int(rng.integers(1, 4)),
            block_m=int(rng.choice([32, 64])),
            block_n=int(rng.choice([32, 64])),
            block_k=32,
            options_index=int(rng.integers(0, len(_GEMM_OPTIONS))),
            data_seed=int(rng.integers(0, 2**31)),
        )

    def problem(self) -> GemmProblem:
        return GemmProblem(
            M=self.m_blocks * self.block_m,
            N=self.n_blocks * self.block_n,
            K=self.k_steps * self.block_k,
            block_m=self.block_m,
            block_n=self.block_n,
            block_k=self.block_k,
            seed=self.data_seed,
        )

    def execute(self, engine: str) -> Observation:
        return self.observe(_device(engine))

    def observe(self, device: Device) -> Observation:
        problem = self.problem()
        args, _, _ = make_gemm_inputs(problem, device)
        result = device.run(
            matmul_kernel,
            grid=problem.grid,
            args=args,
            constexprs=problem.constexprs(),
            options=_GEMM_OPTIONS[self.options_index],
            flops=problem.flops,
        )
        return Observation(
            output=args["c_ptr"].buffer.to_numpy().tobytes(),
            cycles=result.cycles,
            per_cta_cycles=tuple(result.per_cta_cycles),
            utilization=result.tensor_core_utilization,
            bytes_copied=result.bytes_copied,
        )

    def shrink_candidates(self) -> list["GemmCase"]:
        out = []
        for attr in ("m_blocks", "n_blocks", "k_steps"):
            if getattr(self, attr) > 1:
                out.append(dataclasses.replace(self, **{attr: getattr(self, attr) // 2}))
        for attr in ("block_m", "block_n"):
            if getattr(self, attr) > 32:
                out.append(dataclasses.replace(self, **{attr: 32}))
        if self.options_index != 0:
            out.append(dataclasses.replace(self, options_index=0))
        return out


# ---------------------------------------------------------------------------
# Family 3: randomized per-row reduction kernels (softmax / normalization)
# ---------------------------------------------------------------------------


@kernel
def _fuzz_rowop_kernel(x_ptr, out_ptr, n_cols, inv_n,
                       OP: tl.constexpr, COLS: tl.constexpr):
    """One constexpr-selected row reduction per program, over a masked row."""
    pid = tl.program_id(axis=0)
    col = tl.arange(0, COLS)
    mask = col < n_cols
    x = tl.load(x_ptr + pid * n_cols + col, mask=mask, other=0.0)
    if OP == 0:  # numerically-stable softmax
        xm = tl.where(mask, x, float("-inf"))
        m = tl.max(xm, axis=0)
        e = tl.where(mask, tl.exp(xm - m), 0.0)
        r = e / tl.sum(e, axis=0)
    elif OP == 1:  # mean-centering (LayerNorm's first half)
        mean = tl.sum(x, axis=0) * inv_n
        r = tl.where(mask, x - mean, 0.0)
    elif OP == 2:  # RMS normalization
        ms = tl.sum(x * x, axis=0) * inv_n
        r = x * tl.rsqrt(ms + 1e-5)
    else:  # max-shift
        m = tl.max(tl.where(mask, x, float("-inf")), axis=0)
        r = x - m
    tl.store(out_ptr + pid * n_cols + col, r, mask=mask)


@dataclass(frozen=True)
class RowOpCase:
    rows: int
    cols: int
    block: int  # COLS constexpr; >= cols
    op: int
    options_index: int
    data_seed: int

    def describe(self) -> str:
        return (f"rowop(rows={self.rows}, cols={self.cols}, block={self.block}, "
                f"op={self.op}, options={self.options_index}, "
                f"data_seed={self.data_seed})")

    @classmethod
    def random(cls, rng: np.random.Generator) -> "RowOpCase":
        block = int(rng.choice([16, 32, 64, 128]))
        # Bias towards ragged rows so the masked reduction lanes are hit.
        cols = block - (int(rng.integers(1, block)) if rng.random() < 0.7 else 0)
        return cls(
            rows=int(rng.integers(1, 7)),
            cols=max(1, cols),
            block=block,
            op=int(rng.integers(0, 4)),
            options_index=int(rng.integers(0, len(_EW_OPTIONS))),
            data_seed=int(rng.integers(0, 2**31)),
        )

    def execute(self, engine: str) -> Observation:
        device = _device(engine)
        rng = np.random.default_rng(self.data_seed)
        x = rng.standard_normal((self.rows, self.cols), dtype=np.float32) * 2.0
        args = {
            "x_ptr": device.pointer(x, "f32"),
            "out_ptr": device.pointer(np.zeros((self.rows, self.cols),
                                               np.float32), "f32"),
            "n_cols": self.cols,
            "inv_n": 1.0 / self.cols,
        }
        result = device.run(
            _fuzz_rowop_kernel,
            grid=self.rows,
            args=args,
            constexprs={"OP": self.op, "COLS": self.block},
            options=_EW_OPTIONS[self.options_index],
        )
        return Observation(
            output=args["out_ptr"].buffer.to_numpy().tobytes(),
            cycles=result.cycles,
            per_cta_cycles=tuple(result.per_cta_cycles),
            utilization=result.tensor_core_utilization,
            bytes_copied=result.bytes_copied,
        )

    def shrink_candidates(self) -> list["RowOpCase"]:
        out = []
        if self.rows > 1:
            out.append(dataclasses.replace(self, rows=max(1, self.rows // 2)))
        if self.block > 16:
            out.append(dataclasses.replace(
                self, block=self.block // 2, cols=min(self.cols, self.block // 2)))
        if self.op != 3:
            out.append(dataclasses.replace(self, op=3))
        if self.options_index != 0:
            out.append(dataclasses.replace(self, options_index=0))
        return out


# ---------------------------------------------------------------------------
# Family 4: split-K accumulation pipelines (two launches via run_many)
# ---------------------------------------------------------------------------

# Persistent kernels require a 1-D grid; split-K rides the second grid axis,
# so that configuration is statically infeasible rather than fuzzable.
_SPLITK_OPTIONS = [opt for opt in _GEMM_OPTIONS
                   if not getattr(opt, "persistent", False)]


@dataclass(frozen=True)
class SplitKCase:
    m_blocks: int
    n_blocks: int
    splits: int
    k_steps_per_split: int
    options_index: int
    data_seed: int

    BLOCK = 32

    def describe(self) -> str:
        return (f"splitk(M={self.m_blocks}x{self.BLOCK}, N={self.n_blocks}x{self.BLOCK}, "
                f"splits={self.splits}, ksteps={self.k_steps_per_split}, "
                f"options={self.options_index}, data_seed={self.data_seed})")

    @classmethod
    def random(cls, rng: np.random.Generator) -> "SplitKCase":
        return cls(
            m_blocks=int(rng.integers(1, 3)),
            n_blocks=int(rng.integers(1, 3)),
            splits=int(rng.choice([1, 2, 4])),
            k_steps_per_split=int(rng.integers(1, 3)),
            options_index=int(rng.integers(0, len(_SPLITK_OPTIONS))),
            data_seed=int(rng.integers(0, 2**31)),
        )

    def problem(self) -> SplitKGemmProblem:
        return SplitKGemmProblem(
            M=self.m_blocks * self.BLOCK,
            N=self.n_blocks * self.BLOCK,
            K=self.splits * self.k_steps_per_split * self.BLOCK,
            splits=self.splits,
            block_m=self.BLOCK,
            block_n=self.BLOCK,
            block_k=self.BLOCK,
            reduce_block=64,
            seed=self.data_seed,
        )

    def execute(self, engine: str) -> Observation:
        device = _device(engine)
        results, c = run_splitk_gemm(device, self.problem(),
                                     _SPLITK_OPTIONS[self.options_index])
        return Observation(
            output=c.tobytes(),
            cycles=sum(r.cycles for r in results),
            per_cta_cycles=tuple(c for r in results for c in r.per_cta_cycles),
            utilization=sum(r.tensor_core_utilization for r in results),
            bytes_copied=sum(r.bytes_copied for r in results),
        )

    def shrink_candidates(self) -> list["SplitKCase"]:
        out = []
        for attr in ("m_blocks", "n_blocks", "k_steps_per_split"):
            if getattr(self, attr) > 1:
                out.append(dataclasses.replace(self, **{attr: getattr(self, attr) // 2}))
        if self.splits > 1:
            out.append(dataclasses.replace(self, splits=self.splits // 2))
        if self.options_index != 0:
            out.append(dataclasses.replace(self, options_index=0))
        return out


# ---------------------------------------------------------------------------
# Family 5: chaos -- sharded execution with one injected fault per case
# ---------------------------------------------------------------------------

_CHAOS_FAULT_KINDS = ("kill", "hang", "pipe")

#: Supervision policy the chaos cases run under: a short hang deadline (so a
#: faulted-in hang resolves in test time, with heartbeats scaled down with
#: it) and the default retry budget.
_CHAOS_TIMEOUT = 0.5


@dataclass(frozen=True)
class ChaosCase:
    """A sharded GEMM launch with one randomly-placed injected fault.

    The fault targets a random worker (and, for kill/hang, a random CTA
    ordinal within its shard -- which may not exist, in which case nothing
    fires and the case degenerates to a clean differential: also worth
    checking).  The supervised launch must recover and match the serial
    plans engine bit-for-bit.
    """

    gemm: GemmCase
    fault_kind: str
    fault_worker: int
    fault_cta: int

    def describe(self) -> str:
        return (f"chaos({self.fault_spec()} into {self.gemm.describe()})")

    @classmethod
    def random(cls, rng: np.random.Generator) -> "ChaosCase":
        gemm = GemmCase.random(rng)
        if gemm.m_blocks * gemm.n_blocks < 2:
            # The launch must actually shard for the fault to have a target.
            gemm = dataclasses.replace(gemm, n_blocks=2)
        return cls(
            gemm=gemm,
            fault_kind=_CHAOS_FAULT_KINDS[int(rng.integers(0, 3))],
            fault_worker=int(rng.integers(0, 2)),
            fault_cta=int(rng.integers(0, 2)),
        )

    def fault_spec(self) -> str:
        if self.fault_kind == "pipe":
            return f"pipe:worker={self.fault_worker}"
        # seconds far beyond the deadline: the supervisor, not the sleep,
        # must end an injected hang
        return (f"{self.fault_kind}:worker={self.fault_worker},"
                f"cta={self.fault_cta},seconds=60")

    def execute(self, engine: str) -> Observation:
        if engine == "sharded":
            device = Device(mode="functional", use_plans=True, workers=2,
                            shard_timeout=_CHAOS_TIMEOUT, shard_retries=2)
        elif engine == "pooled":
            device = Device(mode="functional", use_plans=True, pool=2,
                            shard_timeout=_CHAOS_TIMEOUT, shard_retries=2)
        else:
            return self.gemm.execute(engine)
        with faults.inject_faults(self.fault_spec()):
            return self.gemm.observe(device)

    def shrink_candidates(self) -> list["ChaosCase"]:
        out = [dataclasses.replace(self, gemm=candidate)
               for candidate in self.gemm.shrink_candidates()]
        if self.fault_cta != 0:
            out.append(dataclasses.replace(self, fault_cta=0))
        if self.fault_worker != 0:
            out.append(dataclasses.replace(self, fault_worker=0))
        return out


# ---------------------------------------------------------------------------
# The differential harness
# ---------------------------------------------------------------------------


def _disagreement(case) -> str | None:
    """Run a case through every engine; a description of any mismatch."""
    oracle = case.execute(ENGINES[0])
    for engine in ENGINES[1:]:
        observed = case.execute(engine)
        mismatches = oracle.diff(observed)
        if mismatches:
            return f"{engine} vs interpreter: " + ", ".join(mismatches)
    return None


def _shrink(case, steps: int = MAX_SHRINK_STEPS):
    """Greedily shrink a failing case while it keeps failing."""
    failure = _disagreement(case)
    assert failure is not None
    for _ in range(steps):
        for candidate in case.shrink_candidates():
            candidate_failure = _disagreement(candidate)
            if candidate_failure is not None:
                case, failure = candidate, candidate_failure
                break
        else:
            break  # no smaller failing candidate: minimal
    return case, failure


def _check(case) -> None:
    failure = _disagreement(case)
    if failure is None:
        return
    minimal, minimal_failure = _shrink(case)
    pytest.fail(
        f"differential fuzzing found a divergence.\n"
        f"  original: {case.describe()}\n    -> {failure}\n"
        f"  shrunk:   {minimal.describe()}\n    -> {minimal_failure}\n"
        f"  reproduce with REPRO_FUZZ_SEED={BASE_SEED}"
    )


def _cases(factory, count: int, salt: int):
    rng = np.random.default_rng(BASE_SEED + salt)
    return [factory(rng) for _ in range(count)]


@pytest.mark.parametrize("case", _cases(ElementwiseCase.random, CASES_PER_FAMILY, 1),
                         ids=lambda c: c.describe())
def test_fuzz_elementwise(case):
    _check(case)


@pytest.mark.parametrize("case", _cases(GemmCase.random, CASES_PER_FAMILY, 2),
                         ids=lambda c: c.describe())
def test_fuzz_gemm(case):
    _check(case)


@pytest.mark.parametrize("case", _cases(RowOpCase.random, CASES_PER_FAMILY, 3),
                         ids=lambda c: c.describe())
def test_fuzz_rowop(case):
    _check(case)


@pytest.mark.parametrize("case", _cases(SplitKCase.random, CASES_PER_FAMILY, 4),
                         ids=lambda c: c.describe())
def test_fuzz_splitk(case):
    _check(case)


@pytest.mark.parametrize("case", _cases(ChaosCase.random, CASES_PER_FAMILY, 5),
                         ids=lambda c: c.describe())
def test_fuzz_chaos(case):
    """Sharded execution stays bit-identical to serial under injected faults."""
    _check(case)


def test_shrinker_reaches_a_minimal_case():
    """The shrinker's search space bottoms out at the smallest configuration."""
    case = ElementwiseCase(n=128, block=32, op1=2, op2=1, options_index=2,
                           data_seed=7)
    seen = set()
    while True:
        seen.add(case)
        candidates = case.shrink_candidates()
        if not candidates:
            break
        case = candidates[0]
        assert case not in seen, "shrinking must strictly reduce the case"
    assert case.n == 1 and case.block == 16
    assert case.op1 == 3 and case.op2 == 3 and case.options_index == 0
