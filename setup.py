"""Setuptools shim so legacy `python setup.py develop` works offline.

The canonical metadata lives in pyproject.toml; this file only exists because
the execution environment has no network access and an old setuptools/wheel
combination that cannot build editable wheels.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
